(** Medrec: the OpenMRS-shaped medical-records application.

    Schema and page inventory mirror the structure of the paper's second
    evaluation application: a patient/visit/encounter/observation core, a
    concept dictionary, and a long tail of administrative entities whose
    management pages dominate the benchmark list (112 pages, like the
    paper's appendix). *)

module TS = Table_spec
open TS

let name = "medrec"

let status_choices = [ "active"; "pending"; "closed"; "voided" ]

let specs =
  [
    spec "role" [ name_col "role" ] (fun _ -> 5);
    spec "app_user"
      [ col "username" Sloth_sql.Ast.T_text (Name_like "user"); fk "role_id" "role" ]
      (fun _ -> 20);
    spec "privilege"
      [ name_col "priv"; fk "role_id" "role" ]
      (fun _ -> 120)
      ~list_deps:[ "role_id" ];
    spec "person"
      [
        name_col "person";
        col "gender" Sloth_sql.Ast.T_text (Choice [ "F"; "M" ]);
        col "birth_year" Sloth_sql.Ast.T_int (Int_range (1930, 2010));
      ]
      (fun s -> 150 * s);
    spec "concept_class" [ name_col "class" ] (fun _ -> 10);
    spec "concept_datatype" [ name_col "datatype" ] (fun _ -> 8);
    spec "concept"
      [
        name_col "concept";
        fk "class_id" "concept_class";
        fk "datatype_id" "concept_datatype";
      ]
      (fun s -> 100 * s)
      ~list_deps:[ "class_id"; "datatype_id" ]
      ~lookups:[ "concept_class"; "concept_datatype" ]
      ~eager_children:[ ("drug", "concept_id") ];
    spec "concept_source" [ name_col "source" ] (fun _ -> 6);
    spec "concept_reference_term"
      [ fk "source_id" "concept_source"; col "code" Sloth_sql.Ast.T_text (Name_like "code") ]
      (fun _ -> 50)
      ~list_deps:[ "source_id" ]
      ~lookups:[ "concept_source" ];
    spec "concept_proposal"
      [ fk "concept_id" "concept"; col "status" Sloth_sql.Ast.T_text (Choice status_choices) ]
      (fun _ -> 20)
      ~list_deps:[ "concept_id" ];
    spec "drug"
      [ name_col "drug"; fk "concept_id" "concept";
        col "dosage" Sloth_sql.Ast.T_float (Float_range (0.5, 20.0)) ]
      (fun _ -> 40)
      ~list_deps:[ "concept_id" ]
      ~lookups:[ "concept_class" ];
    spec "location"
      [ name_col "location"; fk "parent_id" "location" ]
      (fun _ -> 15)
      ~list_deps:[ "parent_id" ];
    spec "location_attribute_type" [ name_col "locattr" ] (fun _ -> 6);
    spec "visit_type" [ name_col "visittype" ] (fun _ -> 6);
    spec "visit_attribute_type" [ name_col "visitattr" ] (fun _ -> 6);
    spec "encounter_type" [ name_col "enctype" ] (fun _ -> 8);
    spec "field_type" [ name_col "fieldtype" ] (fun _ -> 5);
    spec "patient"
      [ col "identifier" Sloth_sql.Ast.T_text (Name_like "pat"); fk "person_id" "person" ]
      (fun s -> 100 * s)
      ~list_deps:[ "person_id" ]
      ~eager_children:[ ("visit", "patient_id") ];
    spec "provider"
      [ name_col "provider"; fk "person_id" "person" ]
      (fun _ -> 15)
      ~list_deps:[ "person_id" ];
    spec "provider_attribute_type" [ name_col "provattr" ] (fun _ -> 6);
    spec "visit"
      [
        fk "patient_id" "patient";
        fk "visit_type_id" "visit_type";
        fk "location_id" "location";
        col "started" Sloth_sql.Ast.T_int (Int_range (2015, 2026));
      ]
      (fun s -> 200 * s)
      ~list_deps:[ "patient_id"; "visit_type_id" ]
      ~lookups:[ "visit_type"; "location" ]
      ~eager_children:[ ("encounter", "visit_id") ];
    spec "encounter"
      [
        Table_spec.{ cname = "patient_id"; cty = Sloth_sql.Ast.T_int; cgen = Fk "patient" };
        fk "visit_id" "visit";
        fk "encounter_type_id" "encounter_type";
        fk "location_id" "location";
        fk "provider_id" "provider";
      ]
      (fun s -> 250 * s)
      ~list_deps:[ "patient_id"; "encounter_type_id" ]
      ~lookups:[ "encounter_type"; "location"; "provider" ];
    spec "obs"
      [
        Table_spec.{ cname = "encounter_id"; cty = Sloth_sql.Ast.T_int; cgen = Skewed_fk "encounter" };
        fk "concept_id" "concept";
        col "value_num" Sloth_sql.Ast.T_int (Int_range (0, 200));
        col "status" Sloth_sql.Ast.T_text (Choice status_choices);
      ]
      (fun s -> 400 * s)
      ~list_deps:[ "concept_id" ];
    spec "order_rec"
      [
        fk "patient_id" "patient";
        fk "concept_id" "concept";
        fk "provider_id" "provider";
        col "amount" Sloth_sql.Ast.T_float (Float_range (1.0, 500.0));
      ]
      (fun s -> 150 * s)
      ~list_deps:[ "patient_id"; "concept_id" ]
      ~lookups:[ "provider" ];
    spec "program"
      [ name_col "program"; fk "concept_id" "concept" ]
      (fun _ -> 8)
      ~list_deps:[ "concept_id" ];
    spec "patient_program"
      [
        fk "patient_id" "patient";
        fk "program_id" "program";
        col "status" Sloth_sql.Ast.T_text (Choice status_choices);
      ]
      (fun s -> 80 * s)
      ~list_deps:[ "patient_id"; "program_id" ];
    spec "form_def"
      [ name_col "form"; fk "encounter_type_id" "encounter_type";
        col "published" Sloth_sql.Ast.T_bool Flag ]
      (fun _ -> 20)
      ~list_deps:[ "encounter_type_id" ]
      ~lookups:[ "encounter_type" ]
      ~eager_children:[ ("field_def", "form_id") ];
    spec "field_def"
      [
        fk "form_id" "form_def";
        fk "concept_id" "concept";
        fk "field_type_id" "field_type";
        col "field_number" Sloth_sql.Ast.T_int (Int_range (1, 40));
      ]
      (fun _ -> 100)
      ~list_deps:[ "form_id"; "field_type_id" ]
      ~lookups:[ "field_type"; "form_def" ];
    spec "person_attribute_type" [ name_col "persattr" ] (fun _ -> 8);
    spec "relationship_type"
      [ name_col "reltype";
        col "description" Sloth_sql.Ast.T_text (Choice [ "family"; "care"; "other" ]) ]
      (fun _ -> 6);
    spec "relationship"
      [
        fk "person_a" "person";
        fk "person_b" "person";
        fk "relationship_type_id" "relationship_type";
      ]
      (fun s -> 60 * s)
      ~list_deps:[ "relationship_type_id" ]
      ~lookups:[ "relationship_type" ];
    spec "hl7_source" [ name_col "hl7src" ] (fun _ -> 4)
      ~eager_children:[ ("hl7_message", "source_id") ];
    spec "hl7_message"
      [ fk "source_id" "hl7_source";
        col "status" Sloth_sql.Ast.T_text (Choice [ "queued"; "held"; "error"; "archived" ]) ]
      (fun s -> 40 * s)
      ~list_deps:[ "source_id" ]
      ~lookups:[ "hl7_source" ];
    spec "alert"
      [ fk "user_id" "app_user";
        col "text" Sloth_sql.Ast.T_text (Choice [ "review"; "signoff"; "expire" ]) ]
      (fun s -> 120 * s)
      ~list_deps:[ "user_id" ];
    spec "global_property"
      [ col "prop" Sloth_sql.Ast.T_text (Name_like "prop");
        col "value" Sloth_sql.Ast.T_text (Choice [ "true"; "false"; "10"; "default" ]) ]
      (fun _ -> 40);
    spec "scheduler_task"
      [ name_col "task"; col "interval_s" Sloth_sql.Ast.T_int (Int_range (30, 86400)) ]
      (fun _ -> 8);
    spec "module_def"
      [ name_col "module";
        col "version" Sloth_sql.Ast.T_text (Choice [ "1.0"; "1.1"; "2.0" ]) ]
      (fun _ -> 12);
  ]

let populate ?(scale = 1) db = Datagen.populate ~scale db specs

(* Tables that get the standard admin list+form page pair. *)
let admin_tables =
  [
    "privilege"; "concept"; "concept_source"; "concept_reference_term";
    "concept_proposal"; "drug"; "location"; "location_attribute_type";
    "visit_type"; "visit_attribute_type"; "encounter_type"; "field_type";
    "patient"; "provider"; "provider_attribute_type"; "visit"; "encounter";
    "order_rec"; "program"; "patient_program"; "form_def"; "field_def";
    "person_attribute_type"; "relationship_type"; "relationship";
    "hl7_source"; "hl7_message"; "global_property"; "scheduler_task";
    "module_def"; "app_user"; "role"; "concept_class"; "concept_datatype";
  ]

(* Tables that additionally get a read-only view page with child counts. *)
let view_tables =
  [
    ("patient", [ ("visit", "patient_id"); ("encounter", "patient_id");
                  ("order_rec", "patient_id") ]);
    ("visit", [ ("encounter", "visit_id") ]);
    ("encounter", [ ("obs", "encounter_id") ]);
    ("concept", [ ("drug", "concept_id"); ("obs", "concept_id");
                  ("concept_proposal", "concept_id") ]);
    ("provider", [ ("encounter", "provider_id"); ("order_rec", "provider_id") ]);
    ("location", [ ("visit", "location_id"); ("encounter", "location_id") ]);
    ("program", [ ("patient_program", "program_id") ]);
    ("form_def", [ ("field_def", "form_id") ]);
    ("hl7_source", [ ("hl7_message", "source_id") ]);
    ("role", [ ("app_user", "role_id"); ("privilege", "role_id") ]);
    ("person", [ ("patient", "person_id"); ("relationship", "person_a") ]);
    ("concept_class", [ ("concept", "class_id") ]);
  ]

module Pages (X : Sloth_core.Exec.S) = struct
  module K = Webapp.Kit (X)
  module Html = Sloth_web.Html
  module Model = Sloth_web.Model
  module Row = Sloth_orm.Row
  module Repo = Sloth_orm.Repo
  module Value = Sloth_storage.Value
  open Sloth_sql.Ast

  (* The per-page number of menu privilege checks varies like real pages'
     menus do; derived deterministically from the page name. *)
  let menu_checks page_name = 18 + (Hashtbl.hash page_name mod 14)

  let forced_checks page_name = 12 + (Hashtbl.hash (page_name ^ "!") mod 26)

  let std page_name build =
    ( page_name,
      fun () ->
        let req = K.new_request specs in
        if
          K.prelude req ~user_table:"app_user" ~privilege_table:"privilege"
            ~menu_checks:(menu_checks page_name)
            ~forced_checks:(forced_checks page_name) ~user_id:1 ()
        then build req;
        req.model )

  let generic_pages =
    List.concat_map
      (fun table ->
        let s = TS.find specs table in
        [
          std (Printf.sprintf "admin/%s/list" table) (fun req ->
              K.list_page req s ());
          std (Printf.sprintf "admin/%s/form" table) (fun req ->
              K.form_page req s ~id:2 ());
        ])
      admin_tables

  let view_pages =
    List.map
      (fun (table, children) ->
        let s = TS.find specs table in
        std (Printf.sprintf "admin/%s/view" table) (fun req ->
            K.view_page req s ~id:2 ~children ()))
      view_tables

  (* --- rich, hand-written pages ----------------------------------------- *)

  let patient_dashboard =
    std "patient_dashboard" (fun req ->
        let module Patients = (val req.repo (K.spec req "patient")) in
        let module Persons = (val req.repo (K.spec req "person")) in
        let module Visits = (val req.repo (K.spec req "visit")) in
        let module Encounters = (val req.repo (K.spec req "encounter")) in
        let module Orders = (val req.repo (K.spec req "order_rec")) in
        let module Programs = (val req.repo (K.spec req "patient_program")) in
        match X.get (Patients.find 1) with
        | None -> Model.put_now req.model "patient" (Html.text "(missing)")
        | Some patient ->
            Model.put_now req.model "patient" (K.definition_html patient);
            (* The person record is only displayed: defer. *)
            Model.put req.model "person"
              (X.to_thunk
                 (X.map (K.opt_html K.definition_html)
                    (Persons.find (Row.int patient "person_id"))));
            (* Visits are iterated to build per-visit sections: forced. *)
            let visits =
              X.get (Visits.find_by "patient_id" (Value.Int 1))
            in
            List.iteri
              (fun i visit ->
                let vid = Row.int visit "id" in
                Model.put req.model
                  (Printf.sprintf "visit_%d_encounters" i)
                  (X.to_thunk
                     (X.map K.rows_table
                        (Encounters.find_by "visit_id" (Value.Int vid)))))
              visits;
            (* Aggregates straight into the model: all batchable. *)
            Model.put req.model "active_visits"
              (X.to_thunk
                 (X.map
                    (fun n -> Html.p [ Html.int n ])
                    (Visits.count
                       ~where:
                         (Binop
                            ( And,
                              Binop (Eq, Col (None, "patient_id"), Lit (L_int 1)),
                              Binop (Gt, Col (None, "started"), Lit (L_int 2023))
                            ))
                       ())));
            Model.put req.model "orders"
              (X.to_thunk
                 (X.map K.rows_table (Orders.find_by "patient_id" (Value.Int 1))));
            Model.put req.model "programs"
              (X.to_thunk
                 (X.map K.rows_table (Programs.find_by "patient_id" (Value.Int 1)))))

  (* The paper's running example (Sec. 6.1): load an encounter's
     observations, fetch each observation's concept, store everything in
     the model.  Encounter 1 is the hot entity of the skewed FK. *)
  let encounter_display =
    std "encounter_display" (fun req ->
        let module Encounters = (val req.repo (K.spec req "encounter")) in
        let module Obs = (val req.repo (K.spec req "obs")) in
        let module Concepts = (val req.repo (K.spec req "concept")) in
        match X.get (Encounters.find 1) with
        | None -> Model.put_now req.model "encounter" (Html.text "(missing)")
        | Some enc ->
            Model.put_now req.model "encounter" (K.definition_html enc);
            let obs = X.get (Obs.find_by "encounter_id" (Value.Int 1)) in
            let cells =
              List.map
                (fun o ->
                  let concept_id = Row.int o "concept_id" in
                  X.map
                    (fun concept ->
                      Html.tr
                        [
                          Html.td [ Html.int (Row.int o "value_num") ];
                          Html.td
                            [
                              (match concept with
                              | Some c -> Html.text (Row.str c "name")
                              | None -> Html.text "?");
                            ];
                        ])
                    (Concepts.find concept_id))
                obs
            in
            Model.put req.model "obs_map"
              (X.to_thunk (X.map (fun trs -> Html.table trs) (X.all cells))))

  let person_dashboard =
    std "person_dashboard" (fun req ->
        let module Persons = (val req.repo (K.spec req "person")) in
        let module Rels = (val req.repo (K.spec req "relationship")) in
        match X.get (Persons.find 1) with
        | None -> Model.put_now req.model "person" (Html.text "(missing)")
        | Some person ->
            Model.put_now req.model "person" (K.definition_html person);
            let rels = X.get (Rels.find_by "person_a" (Value.Int 1)) in
            let cells =
              List.map
                (fun r ->
                  X.map
                    (K.opt_html (fun other ->
                         Html.li [ Html.text (Row.str other "name") ]))
                    (Persons.find (Row.int r "person_b")))
                rels
            in
            Model.put req.model "relationships"
              (X.to_thunk (X.map (fun lis -> Html.ul lis) (X.all cells))))

  let merge_patients =
    std "merge_patients" (fun req ->
        let module Patients = (val req.repo (K.spec req "patient")) in
        let module Visits = (val req.repo (K.spec req "visit")) in
        let module Encounters = (val req.repo (K.spec req "encounter")) in
        List.iter
          (fun pid ->
            Model.put req.model
              (Printf.sprintf "patient_%d" pid)
              (X.to_thunk
                 (X.map (K.opt_html K.definition_html) (Patients.find pid)));
            Model.put req.model
              (Printf.sprintf "patient_%d_visits" pid)
              (X.to_thunk
                 (X.map K.rows_table
                    (Visits.find_by "patient_id" (Value.Int pid))));
            Model.put req.model
              (Printf.sprintf "patient_%d_encounters" pid)
              (X.to_thunk
                 (X.map K.rows_table
                    (Encounters.find_by "patient_id" (Value.Int pid)))))
          [ 1; 2 ])

  (* The paper's pathological page (alertList: 1705 queries): every alert
     fetches its user, and every user its role — a dependent 1+N+N chain. *)
  let alert_list =
    std "alert_list" (fun req ->
        let module Alerts = (val req.repo (K.spec req "alert")) in
        let module Users = (val req.repo (K.spec req "app_user")) in
        let module Roles = (val req.repo (K.spec req "role")) in
        let alerts = X.get (Alerts.all ()) in
        let cells =
          List.map
            (fun a ->
              let user_cell =
                X.bind
                  (function
                    | None -> X.pure (Html.text "?")
                    | Some user ->
                        X.map
                          (fun role ->
                            Html.span
                              [
                                Html.text (Row.str user "username");
                                Html.text "/";
                                (match role with
                                | Some r -> Html.text (Row.str r "name")
                                | None -> Html.text "?");
                              ])
                          (Roles.find (Row.int user "role_id")))
                  (Users.find (Row.int a "user_id"))
              in
              X.map
                (fun user_html ->
                  Html.tr
                    [ Html.td [ Html.text (Row.str a "text") ];
                      Html.td [ user_html ] ])
                user_cell)
            alerts
        in
        Model.put req.model "alerts"
          (X.to_thunk (X.map (fun trs -> Html.table trs) (X.all cells))))

  let admin_index =
    std "admin_index" (fun req ->
        List.iter
          (fun table ->
            let module R = (val req.repo (K.spec req table)) in
            Model.put req.model ("n_" ^ table)
              (X.to_thunk
                 (X.map (fun n -> Html.p [ Html.int n ]) (R.count ()))))
          [
            "patient"; "visit"; "encounter"; "obs"; "concept"; "provider";
            "location"; "program"; "form_def"; "app_user"; "alert";
            "hl7_message";
          ])

  let system_info =
    std "system_info" (fun req ->
        let module Modules = (val req.repo (K.spec req "module_def")) in
        let module Props = (val req.repo (K.spec req "global_property")) in
        Model.put req.model "modules"
          (X.to_thunk (X.map K.rows_table (Modules.all ())));
        (* Individual property lookups, like real settings pages. *)
        List.iter
          (fun i ->
            Model.put req.model
              (Printf.sprintf "prop_%d" i)
              (X.to_thunk
                 (X.map K.rows_table
                    (Props.find_by "prop" (Value.Text (Printf.sprintf "prop%d" i))))))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ])

  let current_users =
    std "current_users" (fun req ->
        let module Users = (val req.repo (K.spec req "app_user")) in
        let module Roles = (val req.repo (K.spec req "role")) in
        let users = X.get (Users.all ()) in
        let cells =
          List.map
            (fun u ->
              X.map
                (fun role ->
                  Html.tr
                    [
                      Html.td [ Html.text (Row.str u "username") ];
                      Html.td
                        [
                          (match role with
                          | Some r -> Html.text (Row.str r "name")
                          | None -> Html.text "?");
                        ];
                    ])
                (Roles.find (Row.int u "role_id")))
            users
        in
        Model.put req.model "users"
          (X.to_thunk (X.map (fun trs -> Html.table trs) (X.all cells))))

  let quick_report =
    std "quick_report" (fun req ->
        ignore (K.spec req "encounter");
        let stmt =
          select_of "encounter"
            ~items:
              [
                Sel_expr (Col (None, "encounter_type_id"), Some "ty");
                Sel_expr (Agg (Count, None), Some "n");
              ]
            ~group_by:[ Col (None, "encounter_type_id") ]
            ~order_by:
              [ { o_expr = Col (None, "encounter_type_id"); o_asc = true } ]
        in
        Model.put req.model "report"
          (X.to_thunk
             (X.map
                (fun rows -> K.rows_table rows)
                (X.query stmt Row.of_result_set))))

  let concept_stats =
    std "dictionary/concept_stats" (fun req ->
        let module Obs = (val req.repo (K.spec req "obs")) in
        let module Concepts = (val req.repo (K.spec req "concept")) in
        match X.get (Concepts.find 1) with
        | None -> Model.put_now req.model "concept" (Html.text "(missing)")
        | Some c ->
            Model.put_now req.model "concept" (K.definition_html c);
            Model.put req.model "obs_count"
              (X.to_thunk
                 (X.map
                    (fun n -> Html.p [ Html.int n ])
                    (Obs.count
                       ~where:(Binop (Eq, Col (None, "concept_id"), Lit (L_int 1)))
                       ())));
            let stmt =
              select_of "obs"
                ~items:
                  [
                    Sel_expr (Col (None, "status"), Some "status");
                    Sel_expr (Agg (Count, None), Some "n");
                    Sel_expr
                      (Agg (Avg, Some (Col (None, "value_num"))), Some "avg");
                  ]
                ~where:(Binop (Eq, Col (None, "concept_id"), Lit (L_int 1)))
                ~group_by:[ Col (None, "status") ]
                ~order_by:[ { o_expr = Col (None, "status"); o_asc = true } ]
            in
            Model.put req.model "histogram"
              (X.to_thunk
                 (X.map K.rows_table (X.query stmt Row.of_result_set))))

  let light_page page_name =
    std page_name (fun req ->
        let module Props = (val req.repo (K.spec req "global_property")) in
        Model.put req.model "config"
          (X.to_thunk (X.map K.rows_table (Props.all ~limit:10 ()))))

  (* Pages whose view renders only part of what the controller fetched:
     under Sloth the whole pending batch still executes once anything
     forces — the paper's "a few extra queries" case (Fig. 6c). *)
  let partial_list table =
    std (Printf.sprintf "admin/%s/recent" table) (fun req ->
        K.list_page req (TS.find specs table) ~limit:25 ~render_limit:8 ())

  (* Search pages: a filtered list over a column, like search_issues /
     findPatient forms after submission. *)
  let search_page table column value =
    std (Printf.sprintf "search/%s" table) (fun req ->
        K.list_page req (TS.find specs table)
          ~where:(Binop (Eq, Col (None, column), Repo.lit value))
          ())

  let search_pages =
    [
      search_page "patient" "person_id" (Value.Int 3);
      search_page "encounter" "patient_id" (Value.Int 1);
      search_page "visit" "patient_id" (Value.Int 1);
      search_page "obs" "status" (Value.Text "active");
      search_page "concept" "class_id" (Value.Int 2);
      search_page "order_rec" "provider_id" (Value.Int 1);
      search_page "alert" "text" (Value.Text "review");
      search_page "hl7_message" "status" (Value.Text "queued");
    ]

  let dictionary_pages =
    [
      std "dictionary/concept_list" (fun req ->
          K.list_page req (TS.find specs "concept") ());
      std "dictionary/concept_view" (fun req ->
          K.view_page req (TS.find specs "concept") ~id:1
            ~children:
              [ ("drug", "concept_id"); ("obs", "concept_id");
                ("field_def", "concept_id") ]
            ());
      concept_stats;
    ]

  let special_pages =
    [
      patient_dashboard;
      encounter_display;
      person_dashboard;
      merge_patients;
      alert_list;
      admin_index;
      system_info;
      current_users;
      quick_report;
      light_page "help";
      light_page "options";
      light_page "forgot_password";
      light_page "feedback";
      light_page "server_log";
      light_page "database_changes_info";
      partial_list "obs";
      partial_list "encounter";
      partial_list "visit";
      partial_list "alert";
      light_page "admin/forms/resources";
      light_page "admin/maintenance/implementation";
    ]

  let pages =
    generic_pages @ view_pages @ dictionary_pages @ search_pages
    @ special_pages
  let page_names = List.map fst pages
  let controller page_name = List.assoc page_name pages
end
