(** TPC-W (browsing / shopping / ordering mixes) in the kernel language —
    the second overhead probe of Sec. 6.6.  Every interaction converts its
    results to output immediately (the reference implementation renders
    HTML straight away), leaving no batching opportunity. *)

module TS = Table_spec
module B = Sloth_kernel.Builder
open TS

let n_items = 500
let n_customers = 100

let specs =
  [
    spec "tw_author" [ name_col "author" ] (fun _ -> 50);
    spec "tw_customer"
      [ name_col "cust"; col "balance" Sloth_sql.Ast.T_int (Int_range (0, 500)) ]
      (fun _ -> n_customers);
    spec "tw_item"
      [
        name_col "book";
        fk "author_id" "tw_author";
        col "price" Sloth_sql.Ast.T_int (Int_range (5, 80));
        col "stock" Sloth_sql.Ast.T_int (Int_range (10, 100));
        col "subject" Sloth_sql.Ast.T_text
          (Choice [ "arts"; "biographies"; "computers"; "history"; "travel" ]);
      ]
      (fun _ -> n_items);
    spec "tw_cart"
      [ fk "customer_id" "tw_customer" ]
      (fun _ -> n_customers);
    spec "tw_cart_line"
      [ fk "cart_id" "tw_cart"; fk "item_id" "tw_item";
        col "qty" Sloth_sql.Ast.T_int (Int_range (1, 4)) ]
      (fun _ -> 300);
    spec "tw_order"
      [ fk "customer_id" "tw_customer";
        col "total" Sloth_sql.Ast.T_int (Int_range (10, 400)) ]
      (fun _ -> 200);
    spec "tw_order_line"
      [ fk "order_id" "tw_order"; fk "item_id" "tw_item";
        col "qty" Sloth_sql.Ast.T_int (Int_range (1, 4)) ]
      (fun _ -> 600);
  ]

let populate ?(scale = 1) db = Datagen.populate ~scale db specs

(* --- interactions -------------------------------------------------------- *)

let sel table id_expr =
  B.(read (str (Printf.sprintf "SELECT * FROM %s WHERE id = " table) +% id_expr))

let print_first_name b rows_var =
  B.(print b (field (index (var rows_var) (num 0)) "name"))

let home ~seed =
  let b = B.create () in
  let open B in
  let c = 1 + (seed mod n_customers) in
  let promos = List.init 5 (fun i -> 1 + ((seed * 31) + (i * 97)) mod n_items) in
  let main =
    seq b
      ([ assign b "cust" (sel "tw_customer" (num c));
         print b (field (index (var "cust") (num 0)) "name") ]
      @ List.concat_map
          (fun item ->
            [
              assign b "promo" (sel "tw_item" (num item));
              print_first_name b "promo";
            ])
          promos)
  in
  B.program [] main

let new_products ~seed =
  let b = B.create () in
  let open B in
  let subject =
    List.nth [ "arts"; "biographies"; "computers"; "history"; "travel" ]
      (seed mod 5)
  in
  let main =
    seq b
      [
        assign b "items"
          (read
             (str
                (Printf.sprintf
                   "SELECT * FROM tw_item WHERE subject = '%s' ORDER BY id \
                    DESC LIMIT 10"
                   subject)));
        assign b "i" (num 0);
        while_ b
          (seq b
             [
               if_ b (not_ (var "i" <% len (var "items"))) (break b) (skip b);
               print b (field (index (var "items") (var "i")) "name");
               assign b "i" (var "i" +% num 1);
             ]);
      ]
  in
  B.program [] main

let best_sellers ~seed =
  let b = B.create () in
  let open B in
  ignore seed;
  let main =
    seq b
      [
        assign b "top"
          (read
             (str
                "SELECT item_id AS item_id, COUNT(*) AS n FROM tw_order_line \
                 GROUP BY item_id ORDER BY COUNT(*) DESC LIMIT 5"));
        assign b "i" (num 0);
        while_ b
          (seq b
             [
               if_ b (not_ (var "i" <% len (var "top"))) (break b) (skip b);
               assign b "item"
                 (sel "tw_item" (field (index (var "top") (var "i")) "item_id"));
               print_first_name b "item";
               assign b "i" (var "i" +% num 1);
             ]);
      ]
  in
  B.program [] main

let product_detail ~seed =
  let b = B.create () in
  let open B in
  let item = 1 + (seed * 7 mod n_items) in
  let main =
    seq b
      [
        assign b "item" (sel "tw_item" (num item));
        print_first_name b "item";
        print b (field (index (var "item") (num 0)) "price");
        assign b "author"
          (sel "tw_author" (field (index (var "item") (num 0)) "author_id"));
        print_first_name b "author";
      ]
  in
  B.program [] main

let search ~seed =
  let b = B.create () in
  let open B in
  let prefix = Printf.sprintf "book%d%%" (seed mod 10) in
  let main =
    seq b
      [
        assign b "hits"
          (read
             (str
                (Printf.sprintf
                   "SELECT COUNT(*) AS n FROM tw_item WHERE name LIKE '%s'"
                   prefix)));
        print b (field (index (var "hits") (num 0)) "n");
      ]
  in
  B.program [] main

let shopping_cart ~seed =
  let b = B.create () in
  let open B in
  let cart = 1 + (seed mod n_customers) in
  let item = 1 + (seed * 13 mod n_items) in
  let main =
    seq b
      [
        assign b "item" (sel "tw_item" (num item));
        print b (field (index (var "item") (num 0)) "price");
        write b
          (str "INSERT INTO tw_cart_line (id, cart_id, item_id, qty) VALUES ("
          +% num (10000 + (seed * 3))
          +% str ", " +% num cart +% str ", " +% num item +% str ", 1)");
        assign b "lines"
          (read (str "SELECT * FROM tw_cart_line WHERE cart_id = " +% num cart));
        print b (len (var "lines"));
      ]
  in
  B.program [] main

let buy_confirm ~seed =
  let b = B.create () in
  let open B in
  let cart = 1 + (seed mod n_customers) in
  let cust = cart in
  let main =
    seq b
      [
        assign b "lines"
          (read (str "SELECT * FROM tw_cart_line WHERE cart_id = " +% num cart));
        assign b "oid"
          (field (index (read (str "SELECT COUNT(*) AS n FROM tw_order")) (num 0)) "n"
          +% num 1000);
        write b
          (str "INSERT INTO tw_order (id, customer_id, total) VALUES ("
          +% var "oid" +% str ", " +% num cust +% str ", 0)");
        assign b "total" (num 0);
        assign b "i" (num 0);
        while_ b
          (seq b
             [
               if_ b (not_ (var "i" <% len (var "lines"))) (break b) (skip b);
               assign b "item_id"
                 (field (index (var "lines") (var "i")) "item_id");
               assign b "qty" (field (index (var "lines") (var "i")) "qty");
               assign b "item" (sel "tw_item" (var "item_id"));
               assign b "total"
                 (var "total"
                 +% (field (index (var "item") (num 0)) "price" *% var "qty"));
               write b
                 (str "UPDATE tw_item SET stock = stock - " +% var "qty"
                 +% str " WHERE id = " +% var "item_id");
               write b
                 (str
                    "INSERT INTO tw_order_line (id, order_id, item_id, qty) \
                     VALUES ("
                 +% ((var "oid" *% num 100) +% var "i")
                 +% str ", " +% var "oid" +% str ", " +% var "item_id"
                 +% str ", " +% var "qty" +% str ")");
               assign b "i" (var "i" +% num 1);
             ]);
        write b
          (str "UPDATE tw_order SET total = " +% var "total"
          +% str " WHERE id = " +% var "oid");
        write b
          (str "DELETE FROM tw_cart_line WHERE cart_id = " +% num cart);
        print b (var "oid");
        print b (var "total");
      ]
  in
  B.program [] main

(* The three TPC-W mixes: interaction sequences weighted like the standard
   browse/shop/order profiles. *)
let mixes =
  [
    ( "Browsing mix",
      [ home; new_products; best_sellers; product_detail; search; home;
        product_detail; new_products ] );
    ( "Shopping mix",
      [ home; product_detail; search; shopping_cart; new_products;
        shopping_cart; best_sellers ] );
    ( "Ordering mix",
      [ home; shopping_cart; buy_confirm; product_detail; shopping_cart;
        buy_confirm ] );
  ]
