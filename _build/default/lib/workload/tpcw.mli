(** TPC-W in the kernel language — the second overhead probe of Sec. 6.6.

    Interactions (home, new products, best sellers, product detail,
    search, shopping cart, buy confirm) render their results immediately;
    the three standard mixes weight them like the browse/shop/order
    profiles. *)

val specs : Table_spec.t list
val populate : ?scale:int -> Sloth_storage.Database.t -> unit

val mixes : (string * (seed:int -> Sloth_kernel.Ast.program) list) list
(** [(mix name, interaction sequence)]. *)
