(** Data-driven table descriptions shared by the data generator, the
    generic entities, and the page builders of both evaluation
    applications. *)

type colgen =
  | Serial  (** 1..n primary keys *)
  | Fk of string  (** reference into the named parent table *)
  | Skewed_fk of string
      (** like [Fk] but one eighth of the children attach to parent id 1 —
          a hot entity, used by the database-scaling experiment *)
  | Name_like of string  (** [prefix ^ string_of_int id] *)
  | Int_range of int * int
  | Float_range of float * float
  | Choice of string list
  | Flag  (** boolean *)
  | Derived of (int -> Sloth_storage.Value.t)
      (** computed from the row id — e.g. exhaustive pair enumeration *)

type col = { cname : string; cty : Sloth_sql.Ast.col_type; cgen : colgen }

type t = {
  table : string;
  cols : col list;  (** first column must be the Serial primary key *)
  rows_at : int -> int;  (** scale factor -> row count *)
  list_deps : string list;
      (** FK columns expanded per row on list pages (the 1+N pattern) *)
  lookups : string list;
      (** tables loaded wholesale on form pages (dropdown sources) *)
  eager_children : (string * string) list;
      (** [(child_table, fk_column)] associations the application maps with
          Hibernate's EAGER strategy: the original runtime loads them with
          every owning entity, used or not (the paper's wasted queries);
          Sloth never issues them unless accessed *)
}

let id_col = { cname = "id"; cty = Sloth_sql.Ast.T_int; cgen = Serial }

let spec ?(list_deps = []) ?(lookups = []) ?(eager_children = []) table cols
    rows_at =
  { table; cols = id_col :: cols; rows_at; list_deps; lookups; eager_children }

let col cname cty cgen = { cname; cty; cgen }
let fk cname parent = { cname; cty = Sloth_sql.Ast.T_int; cgen = Fk parent }

let name_col ?(cname = "name") prefix =
  { cname; cty = Sloth_sql.Ast.T_text; cgen = Name_like prefix }

let find specs table =
  match List.find_opt (fun s -> String.equal s.table table) specs with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "no table spec for %s" table)

let parent_of_fk t cname =
  match
    List.find_opt (fun c -> String.equal c.cname cname) t.cols
  with
  | Some { cgen = Fk parent; _ } | Some { cgen = Skewed_fk parent; _ } ->
      parent
  | _ ->
      invalid_arg
        (Printf.sprintf "%s.%s is not a foreign key" t.table cname)

(** The generic ORM entity for a spec, including its eager associations. *)
let entity t =
  let assocs =
    List.map
      (fun (child_table, fk_column) ->
        {
          Sloth_orm.Desc.assoc_name = child_table;
          child_table;
          fk_column;
          fetch = Sloth_orm.Desc.Eager_fetch;
        })
      t.eager_children
  in
  Sloth_orm.Generic.entity ~table:t.table
    ~columns:(List.map (fun c -> (c.cname, c.cty)) t.cols)
    ~assocs ()

let schema t =
  Sloth_storage.Schema.create ~name:t.table ~primary_key:"id"
    (List.map
       (fun c ->
         {
           Sloth_storage.Schema.name = c.cname;
           ty = c.cty;
           nullable = not (String.equal c.cname "id");
         })
       t.cols)
