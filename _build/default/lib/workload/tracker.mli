(** Tracker: the itracker-shaped issue-management evaluation application —
    projects, components, versions, issues, history, attachments,
    notifications — exposing the paper's 38 page benchmarks, including the
    portal home, the Fig. 10(a) scaling page [list_projects] (per-project
    issue/component/version counts over every project), issue view/edit
    pages, and the dependent 1+N activity page. *)

val name : string
val specs : Table_spec.t list
val populate : ?scale:int -> Sloth_storage.Database.t -> unit

module Pages (X : Sloth_core.Exec.S) : sig
  val pages : (string * (unit -> Sloth_web.Model.t)) list
  val page_names : string list
  val controller : string -> unit -> Sloth_web.Model.t
end
