(** Deterministic database population from table specs.

    Creates every table (with indexes on all foreign-key columns), then
    inserts rows in spec order with a seeded RNG — the spec list must be
    topologically sorted (parents before children), which is checked at
    run time.  Population bypasses the driver entirely: it touches neither
    the link statistics nor the virtual clock. *)

val populate :
  ?seed:int -> scale:int -> Sloth_storage.Database.t -> Table_spec.t list -> unit
(** Raises [Invalid_argument] on a child table populated before its
    parent.  Same seed, same specs, same scale → byte-identical data. *)
