open Sloth_sql.Ast

type catalog = {
  find_table : string -> Table.t option;
  add_table : Schema.t -> unit;
}

type outcome = {
  rs : Result_set.t;
  rows_scanned : int;
  rows_affected : int;
}

exception Sql_error of string

let error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

let get_table cat name =
  match cat.find_table name with
  | Some t -> t
  | None -> error "no such table: %s" name

let binding_name table alias = Option.value alias ~default:table

(* --- predicate analysis ----------------------------------------------- *)

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec is_closed = function
  | Lit _ -> true
  | Col _ -> false
  | Binop (_, a, b) -> is_closed a && is_closed b
  | Unop (_, e) -> is_closed e
  | In_list (e, items) -> is_closed e && List.for_all is_closed items
  | Is_null { e; _ } -> is_closed e
  | Like (e, _) -> is_closed e
  | Between { e; lo; hi } -> is_closed e && is_closed lo && is_closed hi
  | In_select _ -> false
  | Agg _ -> false

(* Find an equality [col = closed-expr] over the given binding that can use
   an index of [table]. *)
let indexable_eq ~binding table preds =
  let candidate col rhs =
    if Table.has_index table col && is_closed rhs then
      Some (col, Eval.eval_const rhs)
    else None
  in
  let matches_binding q col =
    (match q with Some q -> String.equal q binding | None -> true)
    && Schema.mem (Table.schema table) col
  in
  List.find_map
    (function
      | Binop (Eq, Col (q, c), rhs) when matches_binding q c ->
          candidate c rhs
      | Binop (Eq, rhs, Col (q, c)) when matches_binding q c ->
          candidate c rhs
      | _ -> None)
    preds

(* Find a range predicate [col < / <= / > / >= closed-expr] or
   [col BETWEEN closed AND closed] over an ordered-indexed column. *)
let indexable_range ~binding table preds =
  let matches_binding q col =
    (match q with Some q -> String.equal q binding | None -> true)
    && Schema.mem (Table.schema table) col
  in
  let ok q c rhs =
    matches_binding q c && Table.has_ordered_index table c && is_closed rhs
  in
  let bound op v =
    match op with
    | Gt -> (Some (v, false), None)
    | Ge -> (Some (v, true), None)
    | Lt -> (None, Some (v, false))
    | Le -> (None, Some (v, true))
    | _ -> assert false
  in
  let flip = function Gt -> Lt | Ge -> Le | Lt -> Gt | Le -> Ge | op -> op in
  List.find_map
    (function
      | Binop (((Gt | Ge | Lt | Le) as op), Col (q, c), rhs) when ok q c rhs ->
          let lo, hi = bound op (Eval.eval_const rhs) in
          Some (c, lo, hi)
      | Binop (((Gt | Ge | Lt | Le) as op), rhs, Col (q, c)) when ok q c rhs ->
          let lo, hi = bound (flip op) (Eval.eval_const rhs) in
          Some (c, lo, hi)
      | Between { e = Col (q, c); lo; hi }
        when matches_binding q c
             && Table.has_ordered_index table c
             && is_closed lo && is_closed hi ->
          Some
            ( c,
              Some (Eval.eval_const lo, true),
              Some (Eval.eval_const hi, true) )
      | _ -> None)
    preds

(* --- base row production ---------------------------------------------- *)

(* Produce the environments for the FROM table, using an index when a WHERE
   conjunct allows it.  Returns (envs, rows_scanned). *)
let base_rows cat scanned (table_name, alias) where =
  let table = get_table cat table_name in
  let binding = binding_name table_name alias in
  let schema = Table.schema table in
  let preds = match where with None -> [] | Some w -> conjuncts w in
  let candidate_rids =
    match indexable_eq ~binding table preds with
    | Some (col, key) -> Table.lookup_indexed table col key
    | None -> (
        match indexable_range ~binding table preds with
        | Some (col, lo, hi) ->
            (* Back to rid order so index and scan paths agree exactly. *)
            Option.map (List.sort Int.compare)
              (Table.lookup_range table col ?lo ?hi ())
        | None -> None)
  in
  match candidate_rids with
  | Some rids ->
      scanned := !scanned + List.length rids;
      List.filter_map
        (fun rid ->
          Option.map (fun row -> [ (binding, schema, row) ]) (Table.get table rid))
        rids
  | None ->
      scanned := !scanned + Table.row_count table;
      let acc = ref [] in
      Table.iter (fun _ row -> acc := [ (binding, schema, row) ] :: !acc) table;
      List.rev !acc

(* Extend each environment with rows of a joined table.  Uses an index when
   the ON clause is an equality whose one side is a column of the joined
   table and whose other side is evaluable in the outer environment. *)
let join_rows cat scanned envs { j_table; j_alias; j_on } =
  let table = get_table cat j_table in
  let binding = binding_name j_table j_alias in
  let schema = Table.schema table in
  let refs_join_only q c =
    (match q with Some q -> String.equal q binding | None -> true)
    && Schema.mem schema c
  in
  let index_plan =
    match j_on with
    | Binop (Eq, Col (q, c), other) when refs_join_only q c && Table.has_index table c ->
        Some (c, other)
    | Binop (Eq, other, Col (q, c)) when refs_join_only q c && Table.has_index table c ->
        Some (c, other)
    | _ -> None
  in
  let extend env =
    match index_plan with
    | Some (col, other_side) -> (
        (* The other side must be evaluable in the outer env alone. *)
        match Eval.eval env other_side with
        | key ->
            let rids = Option.get (Table.lookup_indexed table col key) in
            scanned := !scanned + List.length rids;
            List.filter_map
              (fun rid ->
                match Table.get table rid with
                | Some row ->
                    let env' = env @ [ (binding, schema, row) ] in
                    if Value.is_truthy (Eval.eval env' j_on) then Some env'
                    else None
                | None -> None)
              rids
        | exception Eval.Error _ ->
            (* Fall back to a scan below by raising through. *)
            scanned := !scanned + Table.row_count table;
            let acc = ref [] in
            Table.iter
              (fun _ row ->
                let env' = env @ [ (binding, schema, row) ] in
                if Value.is_truthy (Eval.eval env' j_on) then acc := env' :: !acc)
              table;
            List.rev !acc)
    | None ->
        scanned := !scanned + Table.row_count table;
        let acc = ref [] in
        Table.iter
          (fun _ row ->
            let env' = env @ [ (binding, schema, row) ] in
            if Value.is_truthy (Eval.eval env' j_on) then acc := env' :: !acc)
          table;
        List.rev !acc
  in
  List.concat_map extend envs

(* --- projection -------------------------------------------------------- *)

let rec has_agg = function
  | Agg _ -> true
  | Binop (_, a, b) -> has_agg a || has_agg b
  | Unop (_, e) -> has_agg e
  | In_list (e, items) -> has_agg e || List.exists has_agg items
  | Is_null { e; _ } -> has_agg e
  | Like (e, _) -> has_agg e
  | Between { e; lo; hi } -> has_agg e || has_agg lo || has_agg hi
  | In_select (e, _) -> has_agg e
  | Lit _ | Col _ -> false

let item_name = function
  | Star -> error "SELECT * cannot be aliased"
  | Sel_expr (_, Some alias) -> alias
  | Sel_expr (Col (_, c), None) -> c
  | Sel_expr (e, None) -> Sloth_sql.Printer.expr_to_string e

(* Expand items to (column_name, expr) pairs; Star expands to every column
   of every binding, qualified with the binding name when several bindings
   are in scope. *)
let expand_items env_bindings items =
  let star_columns () =
    let qualify = List.length env_bindings > 1 in
    List.concat_map
      (fun (binding, schema) ->
        List.map
          (fun (c : Schema.column) ->
            let name = if qualify then binding ^ "." ^ c.name else c.name in
            (name, Col (Some binding, c.name)))
          (Schema.columns schema))
      env_bindings
  in
  List.concat_map
    (function
      | Star -> star_columns ()
      | Sel_expr (e, _) as item -> [ (item_name item, e) ])
    items

let value_to_lit = function
  | Value.Null -> L_null
  | Value.Int n -> L_int n
  | Value.Float f -> L_float f
  | Value.Text s -> L_string s
  | Value.Bool b -> L_bool b

(* Evaluate an expression over a group of rows: aggregate nodes are computed
   over the whole group and substituted as literals, then the residual
   expression is evaluated on the group's first row. *)
let eval_in_group group e =
  let first = match group with g :: _ -> g | [] -> assert false in
  let agg_value agg arg =
    match (agg, arg) with
    | Count, None -> Value.Int (List.length group)
    | _, None -> error "only COUNT accepts a star argument"
    | _, Some arg -> (
        let vs =
          List.filter_map
            (fun env ->
              match Eval.eval env arg with Value.Null -> None | v -> Some v)
            group
        in
        match agg with
        | Count -> Value.Int (List.length vs)
        | Min -> (
            match vs with
            | [] -> Value.Null
            | v :: rest -> List.fold_left Value.(fun a b -> if compare b a < 0 then b else a) v rest)
        | Max -> (
            match vs with
            | [] -> Value.Null
            | v :: rest -> List.fold_left Value.(fun a b -> if compare b a > 0 then b else a) v rest)
        | Sum | Avg -> (
            match vs with
            | [] -> Value.Null
            | _ ->
                let fs =
                  List.map
                    (fun v ->
                      match Value.to_float v with
                      | Some f -> f
                      | None -> error "SUM/AVG over non-numeric values")
                    vs
                in
                let total = List.fold_left ( +. ) 0.0 fs in
                let all_int =
                  List.for_all (function Value.Int _ -> true | _ -> false) vs
                in
                if agg = Avg then Value.Float (total /. float_of_int (List.length fs))
                else if all_int then Value.Int (int_of_float total)
                else Value.Float total))
  in
  let rec subst = function
    | Agg (a, arg) -> Lit (value_to_lit (agg_value a arg))
    | Binop (op, x, y) -> Binop (op, subst x, subst y)
    | Unop (op, x) -> Unop (op, subst x)
    | In_list (x, items) -> In_list (subst x, List.map subst items)
    | Is_null { e; negated } -> Is_null { e = subst e; negated }
    | Like (x, p) -> Like (subst x, p)
    | Between { e; lo; hi } ->
        Between { e = subst e; lo = subst lo; hi = subst hi }
    | In_select (x, sub) -> In_select (subst x, sub)
    | (Lit _ | Col _) as e -> e
  in
  Eval.eval first (subst e)

(* DISTINCT: drop later duplicates, preserving first-occurrence order. *)
let dedupe_rows rows =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun row ->
      let key = Array.to_list (Array.map Value.to_string row) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    rows

(* --- SELECT ------------------------------------------------------------ *)

(* Check column references against the visible bindings so that unknown
   columns fail even when the input has no rows (plan-time validation). *)
let rec validate_cols bindings = function
  | Col (Some q, c) -> (
      match List.find_opt (fun (b, _) -> String.equal b q) bindings with
      | None -> error "unknown table or alias %s" q
      | Some (_, schema) ->
          if not (Schema.mem schema c) then error "unknown column %s.%s" q c)
  | Col (None, c) ->
      if not (List.exists (fun (_, schema) -> Schema.mem schema c) bindings)
      then error "unknown column %s" c
  | Lit _ -> ()
  | Binop (_, a, b) ->
      validate_cols bindings a;
      validate_cols bindings b
  | Unop (_, e) -> validate_cols bindings e
  | In_list (e, items) ->
      validate_cols bindings e;
      List.iter (validate_cols bindings) items
  | Is_null { e; _ } -> validate_cols bindings e
  | Like (e, _) -> validate_cols bindings e
  | Between { e; lo; hi } ->
      validate_cols bindings e;
      validate_cols bindings lo;
      validate_cols bindings hi
  | In_select (e, _) ->
      (* The subquery is validated when it is materialized (it sees its own
         bindings, not the outer ones — subqueries are uncorrelated). *)
      validate_cols bindings e
  | Agg (_, arg) -> Option.iter (validate_cols bindings) arg

let select_bindings cat (s : select) =
  match s.sel_from with
  | None -> []
  | Some (t, alias) ->
      (binding_name t alias, Table.schema (get_table cat t))
      :: List.map
           (fun j ->
             ( binding_name j.j_table j.j_alias,
               Table.schema (get_table cat j.j_table) ))
           s.sel_joins

let validate_select cat (s : select) =
  let bindings = select_bindings cat s in
  List.iter
    (function Star -> () | Sel_expr (e, _) -> validate_cols bindings e)
    s.sel_items;
  Option.iter (validate_cols bindings) s.sel_where;
  List.iter (validate_cols bindings) s.sel_group_by;
  Option.iter (validate_cols bindings) s.sel_having;
  List.iter (fun o -> validate_cols bindings o.o_expr) s.sel_order_by;
  List.iter (fun j -> validate_cols bindings j.j_on) s.sel_joins

(* Replace every [e IN (SELECT ...)] with [e IN (v1, ..., vn)] by running
   the (uncorrelated) subquery — a single-column result — up front.
   [exec_ref] breaks the recursion with exec_select. *)
let exec_select_ref :
    (catalog -> select -> outcome) ref =
  ref (fun _ _ -> error "executor not initialised")

let rec materialize cat expr =
  match expr with
  | Lit _ | Col _ -> expr
  | Binop (op, a, b) -> Binop (op, materialize cat a, materialize cat b)
  | Unop (op, e) -> Unop (op, materialize cat e)
  | In_list (e, items) ->
      In_list (materialize cat e, List.map (materialize cat) items)
  | Is_null { e; negated } -> Is_null { e = materialize cat e; negated }
  | Like (e, p) -> Like (materialize cat e, p)
  | Between { e; lo; hi } ->
      Between
        { e = materialize cat e; lo = materialize cat lo;
          hi = materialize cat hi }
  | Agg (a, arg) -> Agg (a, Option.map (materialize cat) arg)
  | In_select (e, sub) ->
      let outcome = !exec_select_ref cat sub in
      let values =
        List.map
          (fun row ->
            if Array.length row <> 1 then
              error "IN subquery must produce a single column"
            else Lit (value_to_lit row.(0)))
          (Result_set.rows outcome.rs)
      in
      In_list (materialize cat e, values)

let materialize_select cat (s : select) =
  {
    s with
    sel_where = Option.map (materialize cat) s.sel_where;
    sel_having = Option.map (materialize cat) s.sel_having;
  }

let exec_select cat (s : select) =
  let s = materialize_select cat s in
  validate_select cat s;
  let scanned = ref 0 in
  let envs =
    match s.sel_from with
    | None -> [ [] ]
    | Some from ->
        let base = base_rows cat scanned from s.sel_where in
        List.fold_left (join_rows cat scanned) base s.sel_joins
  in
  (* Apply the full WHERE (the index was only a pre-filter). *)
  let envs =
    match s.sel_where with
    | None -> envs
    | Some w -> List.filter (fun env -> Value.is_truthy (Eval.eval env w)) envs
  in
  let bindings =
    match envs with
    | env :: _ -> List.map (fun (b, sch, _) -> (b, sch)) env
    | [] -> select_bindings cat s
  in
  let aggregated =
    s.sel_group_by <> []
    || List.exists
         (function Star -> false | Sel_expr (e, _) -> has_agg e)
         s.sel_items
  in
  if aggregated then begin
    (* Group rows by the GROUP BY key (all rows form one group if absent). *)
    let key env = List.map (fun e -> Eval.eval env e) s.sel_group_by in
    let groups : (Value.t list * Eval.env list ref) list ref = ref [] in
    List.iter
      (fun env ->
        let k = key env in
        match
          List.find_opt (fun (k', _) -> List.equal Value.equal k k') !groups
        with
        | Some (_, cell) -> cell := env :: !cell
        | None -> groups := (k, ref [ env ]) :: !groups)
      envs;
    let groups =
      List.rev_map (fun (k, cell) -> (k, List.rev !cell)) !groups
    in
    let groups =
      (* A global aggregate over an empty input still yields one row. *)
      if groups = [] && s.sel_group_by = [] && envs = [] then
        if s.sel_from = None then [ ([], [ [] ]) ] else [ ([], []) ]
      else groups
    in
    let items =
      List.map
        (function
          | Star -> error "SELECT * cannot be combined with aggregates"
          | Sel_expr (e, _) as item -> (item_name item, e))
        s.sel_items
    in
    let row_of_group (_, group) =
      Array.of_list
        (List.map
           (fun (_, e) ->
             match group with
             | [] -> (
                 (* Empty global group: COUNT = 0, other aggregates NULL. *)
                 match e with
                 | Agg (Count, _) -> Value.Int 0
                 | Agg _ -> Value.Null
                 | _ -> Value.Null)
             | _ -> eval_in_group group e)
           items)
    in
    (* HAVING filters groups; the predicate may mix aggregates and group
       keys, evaluated the same way as select items. *)
    let groups =
      match s.sel_having with
      | None -> groups
      | Some h ->
          List.filter
            (fun (_, group) ->
              match group with
              | [] -> false
              | _ -> Value.is_truthy (eval_in_group group h))
            groups
    in
    let groups =
      match s.sel_order_by with
      | [] -> groups
      | os ->
          let keyed =
            List.map
              (fun ((_, group) as g) ->
                let ks =
                  List.map
                    (fun o ->
                      let v =
                        match group with
                        | [] -> Value.Null
                        | _ -> eval_in_group group o.o_expr
                      in
                      (v, o.o_asc))
                    os
                in
                (ks, g))
              groups
          in
          let cmp (ka, _) (kb, _) =
            let rec go a b =
              match (a, b) with
              | [], [] -> 0
              | (va, asc) :: ra, (vb, _) :: rb ->
                  let c = Value.compare va vb in
                  if c <> 0 then if asc then c else -c else go ra rb
              | _ -> 0
            in
            go ka kb
          in
          List.map snd (List.stable_sort cmp keyed)
    in
    let groups =
      match s.sel_offset with
      | None -> groups
      | Some n -> List.filteri (fun i _ -> i >= n) groups
    in
    let groups =
      match s.sel_limit with
      | None -> groups
      | Some n -> List.filteri (fun i _ -> i < n) groups
    in
    let rows = List.map row_of_group groups in
    let rows = if s.sel_distinct then dedupe_rows rows else rows in
    {
      rs = Result_set.create ~columns:(List.map fst items) rows;
      rows_scanned = !scanned;
      rows_affected = 0;
    }
  end
  else begin
    let envs =
      match s.sel_order_by with
      | [] -> envs
      | os ->
          let keyed =
            List.map
              (fun env ->
                (List.map (fun o -> (Eval.eval env o.o_expr, o.o_asc)) os, env))
              envs
          in
          let cmp (ka, _) (kb, _) =
            let rec go a b =
              match (a, b) with
              | [], [] -> 0
              | (va, asc) :: ra, (vb, _) :: rb ->
                  let c = Value.compare va vb in
                  if c <> 0 then if asc then c else -c else go ra rb
              | _ -> 0
            in
            go ka kb
          in
          List.map snd (List.stable_sort cmp keyed)
    in
    let envs =
      match s.sel_offset with
      | None -> envs
      | Some n -> List.filteri (fun i _ -> i >= n) envs
    in
    let envs =
      match s.sel_limit with
      | None -> envs
      | Some n -> List.filteri (fun i _ -> i < n) envs
    in
    let named = expand_items bindings s.sel_items in
    let rows =
      List.map
        (fun env ->
          Array.of_list (List.map (fun (_, e) -> Eval.eval env e) named))
        envs
    in
    let rows = if s.sel_distinct then dedupe_rows rows else rows in
    {
      rs = Result_set.create ~columns:(List.map fst named) rows;
      rows_scanned = !scanned;
      rows_affected = 0;
    }
  end

(* --- writes ------------------------------------------------------------ *)

let build_row schema columns values =
  let arity = Schema.arity schema in
  let row = Array.make arity Value.Null in
  if List.length columns <> List.length values then
    error "INSERT: %d columns but %d values" (List.length columns)
      (List.length values);
  List.iter2
    (fun c e ->
      match Schema.column_index schema c with
      | Some i -> row.(i) <- Eval.eval_const e
      | None -> error "INSERT: unknown column %s" c)
    columns values;
  row

let exec_insert cat ?log ~table ~columns ~rows () =
  let t = get_table cat table in
  let schema = Table.schema t in
  let n = ref 0 in
  List.iter
    (fun values ->
      let row = build_row schema columns values in
      match Table.insert t row with
      | rid ->
          Option.iter (fun log -> log (Txn.Inserted (t, rid))) log;
          incr n
      | exception Table.Constraint_violation msg -> error "%s" msg)
    rows;
  { rs = Result_set.empty; rows_scanned = 0; rows_affected = !n }

(* Rows matching a WHERE clause on a single table, as (rid, row) pairs. *)
let matching_rows table where scanned =
  let binding = Schema.name (Table.schema table) in
  let schema = Table.schema table in
  let preds = match where with None -> [] | Some w -> conjuncts w in
  let candidates =
    match indexable_eq ~binding table preds with
    | Some (col, key) ->
        let rids = Option.get (Table.lookup_indexed table col key) in
        scanned := !scanned + List.length rids;
        List.filter_map
          (fun rid -> Option.map (fun row -> (rid, row)) (Table.get table rid))
          rids
    | None ->
        scanned := !scanned + Table.row_count table;
        let acc = ref [] in
        Table.iter (fun rid row -> acc := (rid, row) :: !acc) table;
        List.rev !acc
  in
  match where with
  | None -> candidates
  | Some w ->
      List.filter
        (fun (_, row) -> Value.is_truthy (Eval.eval [ (binding, schema, row) ] w))
        candidates

let exec_update cat ?log ~table ~set ~where () =
  let where = Option.map (materialize cat) where in
  let t = get_table cat table in
  let schema = Table.schema t in
  let binding = Schema.name schema in
  let scanned = ref 0 in
  let targets = matching_rows t where scanned in
  List.iter
    (fun (rid, row) ->
      let updated = Array.copy row in
      List.iter
        (fun (c, e) ->
          match Schema.column_index schema c with
          | Some i -> updated.(i) <- Eval.eval [ (binding, schema, row) ] e
          | None -> error "UPDATE: unknown column %s" c)
        set;
      match Table.update t rid updated with
      | old -> Option.iter (fun log -> log (Txn.Updated (t, rid, old))) log
      | exception Table.Constraint_violation msg -> error "%s" msg)
    targets;
  {
    rs = Result_set.empty;
    rows_scanned = !scanned;
    rows_affected = List.length targets;
  }

let exec_delete cat ?log ~table ~where () =
  let where = Option.map (materialize cat) where in
  let t = get_table cat table in
  let scanned = ref 0 in
  let targets = matching_rows t where scanned in
  List.iter
    (fun (rid, _) ->
      match Table.delete t rid with
      | Some old -> Option.iter (fun log -> log (Txn.Deleted (t, rid, old))) log
      | None -> ())
    targets;
  {
    rs = Result_set.empty;
    rows_scanned = !scanned;
    rows_affected = List.length targets;
  }

let () = exec_select_ref := exec_select

let execute cat ?log stmt =
  try
    match stmt with
    | Select s -> exec_select cat s
    | Insert { table; columns; rows } ->
        exec_insert cat ?log ~table ~columns ~rows ()
    | Update { table; set; where } -> exec_update cat ?log ~table ~set ~where ()
    | Delete { table; where } -> exec_delete cat ?log ~table ~where ()
    | Create_table { table; columns; primary_key } ->
        cat.add_table (Schema.of_ast ~table columns ~primary_key);
        { rs = Result_set.empty; rows_scanned = 0; rows_affected = 0 }
    | Begin_txn | Commit | Rollback ->
        error "transaction control reached the executor"
  with Eval.Error msg -> error "%s" msg
