type t = { columns : string list; rows : Value.t array list }

let create ~columns rows = { columns; rows }
let empty = { columns = []; rows = [] }
let columns t = t.columns
let rows t = t.rows
let num_rows t = List.length t.rows

let column_index t name =
  let rec find i = function
    | [] -> None
    | c :: _ when String.equal c name -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 t.columns

let cell t ~row name =
  match column_index t name with
  | None -> raise Not_found
  | Some i ->
      let r = List.nth t.rows row in
      r.(i)

let first t = match t.rows with [] -> None | r :: _ -> Some r

let scalar t =
  match (t.rows, t.columns) with
  | [ [| v |] ], [ _ ] -> Some v
  | _ -> None

let size_bytes t =
  let header =
    List.fold_left (fun acc c -> acc + String.length c + 4) 16 t.columns
  in
  List.fold_left
    (fun acc row ->
      Array.fold_left (fun acc v -> acc + Value.size_bytes v) acc row)
    header t.rows

let equal a b =
  List.equal String.equal a.columns b.columns
  && List.equal
       (fun x y ->
         Array.length x = Array.length y
         && Array.for_all2 Value.equal x y)
       a.rows b.rows

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.columns);
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@,"
        (String.concat " | "
           (Array.to_list (Array.map Value.to_string row))))
    t.rows;
  Format.fprintf ppf "(%d rows)@]" (num_rows t)
