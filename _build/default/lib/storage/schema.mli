(** Table schemas: ordered columns with types, nullability and primary key. *)

type column = {
  name : string;
  ty : Sloth_sql.Ast.col_type;
  nullable : bool;
}

type t

val create :
  name:string -> ?primary_key:string -> column list -> t
(** Raises [Invalid_argument] on duplicate column names or a primary key
    that names no column. *)

val of_ast :
  table:string ->
  Sloth_sql.Ast.column_def list ->
  primary_key:string option ->
  t

val name : t -> string
val columns : t -> column list
val arity : t -> int
val primary_key : t -> string option

val column_index : t -> string -> int option
val column_index_exn : t -> string -> int
(** Raises [Not_found]. *)

val mem : t -> string -> bool

val validate_row : t -> Value.t array -> (unit, string) result
(** Arity, types, and NOT NULL checks. *)
