(** Query execution cost model.

    The database server charges virtual time per executed query.  The model
    is deliberately simple — a fixed dispatch cost plus per-row scan and
    return costs — but it is enough to reproduce the paper's shape: index
    lookups are cheap, scans grow with table size, and a batch of reads
    executed in parallel costs its maximum rather than its sum. *)

type model = {
  fixed_ms : float;  (** parse/plan/dispatch per statement *)
  scan_row_ms : float;  (** per row examined *)
  return_row_ms : float;  (** per row serialized into the result *)
}

val default : model

val query_ms : model -> rows_scanned:int -> rows_returned:int -> float

val batch_ms : model -> float list -> float
(** Cost of executing a batch of read queries in parallel (Sec. 5): the max
    of the individual costs plus a small per-query coordination overhead. *)
