type t = Null | Int of int | Float of float | Text of string | Bool of bool

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | Text a, Text b -> String.equal a b
  | Bool a, Bool b -> a = b
  | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Int a, Float b -> Float.compare (float_of_int a) b
  | Float a, Int b -> Float.compare a (float_of_int b)
  | Text a, Text b -> String.compare a b
  | _ -> Int.compare (rank a) (rank b)

let type_of = function
  | Null -> None
  | Int _ -> Some Sloth_sql.Ast.T_int
  | Float _ -> Some Sloth_sql.Ast.T_float
  | Text _ -> Some Sloth_sql.Ast.T_text
  | Bool _ -> Some Sloth_sql.Ast.T_bool

let matches_type v ty =
  match (v, ty) with
  | Null, _ -> true
  | Int _, Sloth_sql.Ast.T_int -> true
  | (Int _ | Float _), Sloth_sql.Ast.T_float -> true
  | Text _, Sloth_sql.Ast.T_text -> true
  | Bool _, Sloth_sql.Ast.T_bool -> true
  | _ -> false

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Null | Text _ | Bool _ -> None

let is_truthy = function
  | Bool b -> b
  | Null -> false
  | Int n -> n <> 0
  | Float f -> f <> 0.0
  | Text s -> s <> ""

let size_bytes = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Bool _ -> 1
  | Text s -> String.length s + 4

let of_literal = function
  | Sloth_sql.Ast.L_int n -> Int n
  | Sloth_sql.Ast.L_float f -> Float f
  | Sloth_sql.Ast.L_string s -> Text s
  | Sloth_sql.Ast.L_bool b -> Bool b
  | Sloth_sql.Ast.L_null -> Null

let to_string = function
  | Null -> "NULL"
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.12g" f
  | Text s -> s
  | Bool true -> "true"
  | Bool false -> "false"

let pp ppf v = Format.pp_print_string ppf (to_string v)
