open Sloth_sql.Ast

type env = (string * Schema.t * Value.t array) list

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* SQL LIKE matching: '%' = any run, '_' = any single char.  Classic
   two-pointer algorithm with backtracking on the last '%'. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si star_pi star_si =
    if si = ns then
      (* Consume trailing '%'s. *)
      let rec only_percent i =
        i >= np || (pattern.[i] = '%' && only_percent (i + 1))
      in
      only_percent pi
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si (pi + 1) si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go star_pi (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

let resolve env qualifier column =
  match qualifier with
  | Some q -> (
      match
        List.find_opt (fun (name, _, _) -> String.equal name q) env
      with
      | None -> error "unknown table or alias %s" q
      | Some (_, schema, row) -> (
          match Schema.column_index schema column with
          | Some i -> row.(i)
          | None -> error "unknown column %s.%s" q column))
  | None -> (
      let rec find = function
        | [] -> error "unknown column %s" column
        | (_, schema, row) :: rest -> (
            match Schema.column_index schema column with
            | Some i -> row.(i)
            | None -> find rest)
      in
      find env)

let arith op a b =
  let open Value in
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> (
      match op with
      | Add -> Int (x + y)
      | Sub -> Int (x - y)
      | Mul -> Int (x * y)
      | Div ->
          if y = 0 then error "division by zero" else Int (x / y)
      | _ -> assert false)
  | _ -> (
      match (Value.to_float a, Value.to_float b) with
      | Some x, Some y -> (
          match op with
          | Add -> Float (x +. y)
          | Sub -> Float (x -. y)
          | Mul -> Float (x *. y)
          | Div ->
              if y = 0.0 then error "division by zero" else Float (x /. y)
          | _ -> assert false)
      | _ ->
          error "arithmetic on non-numeric values %s, %s" (Value.to_string a)
            (Value.to_string b))

let comparison op a b =
  let open Value in
  if a = Null || b = Null then Bool false
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Eq -> Value.equal a b
      | Neq -> not (Value.equal a b)
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | _ -> assert false
    in
    Bool r

let rec eval env expr =
  match expr with
  | Lit l -> Value.of_literal l
  | Col (q, c) -> resolve env q c
  | Binop (And, a, b) ->
      Value.Bool (Value.is_truthy (eval env a) && Value.is_truthy (eval env b))
  | Binop (Or, a, b) ->
      Value.Bool (Value.is_truthy (eval env a) || Value.is_truthy (eval env b))
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
      comparison op (eval env a) (eval env b)
  | Binop (((Add | Sub | Mul | Div) as op), a, b) ->
      arith op (eval env a) (eval env b)
  | Unop (Not, e) -> Value.Bool (not (Value.is_truthy (eval env e)))
  | Unop (Neg, e) -> (
      match eval env e with
      | Value.Int n -> Value.Int (-n)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null -> Value.Null
      | v -> error "cannot negate %s" (Value.to_string v))
  | In_list (e, items) ->
      let v = eval env e in
      if v = Value.Null then Value.Bool false
      else
        Value.Bool
          (List.exists (fun item -> Value.equal v (eval env item)) items)
  | Is_null { e; negated } ->
      let isnull = eval env e = Value.Null in
      Value.Bool (if negated then not isnull else isnull)
  | Like (e, pattern) -> (
      match eval env e with
      | Value.Text s -> Value.Bool (like_match ~pattern s)
      | Value.Null -> Value.Bool false
      | v -> error "LIKE on non-text value %s" (Value.to_string v))
  | Between { e; lo; hi } ->
      let v = eval env e in
      let vlo = eval env lo in
      let vhi = eval env hi in
      if v = Value.Null || vlo = Value.Null || vhi = Value.Null then
        Value.Bool false
      else Value.Bool (Value.compare vlo v <= 0 && Value.compare v vhi <= 0)
  | In_select _ ->
      (* The executor materializes uncorrelated subqueries into In_list
         before row-level evaluation. *)
      error "subquery reached the row evaluator unmaterialized"
  | Agg _ -> error "aggregate used outside of a SELECT list"

let eval_const expr = eval [] expr
