(** Runtime values stored in tables and produced by queries. *)

type t = Null | Int of int | Float of float | Text of string | Bool of bool

val equal : t -> t -> bool
(** Structural equality; [Null] equals only [Null].  SQL comparisons against
    NULL are handled in the evaluator, not here. *)

val compare : t -> t -> int
(** Total order used by ORDER BY and ordered indexes: Null < Bool < Int ~
    Float (numeric comparison) < Text. *)

val type_of : t -> Sloth_sql.Ast.col_type option
(** [None] for [Null]. *)

val matches_type : t -> Sloth_sql.Ast.col_type -> bool
(** Whether the value may be stored in a column of the given type ([Null]
    matches every type; Int is accepted by Float columns). *)

val to_float : t -> float option
val is_truthy : t -> bool

val size_bytes : t -> int
(** Approximate wire size, used by the network payload model. *)

val of_literal : Sloth_sql.Ast.literal -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
