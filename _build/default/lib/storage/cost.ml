type model = {
  fixed_ms : float;
  scan_row_ms : float;
  return_row_ms : float;
}

(* Defaults are calibrated so that a typical indexed point query costs
   ~0.1 ms, in line with the paper's MySQL-on-LAN setting where round trips
   (0.5 ms) dominate individual query execution. *)
let default = { fixed_ms = 0.08; scan_row_ms = 0.0004; return_row_ms = 0.002 }

let query_ms m ~rows_scanned ~rows_returned =
  m.fixed_ms
  +. (m.scan_row_ms *. float_of_int rows_scanned)
  +. (m.return_row_ms *. float_of_int rows_returned)

let batch_ms _model costs =
  match costs with
  | [] -> 0.0
  | _ ->
      let coordination = 0.01 *. float_of_int (List.length costs) in
      List.fold_left Float.max 0.0 costs +. coordination
