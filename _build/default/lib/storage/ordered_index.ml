module M = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type t = { mutable map : int list M.t; mutable entries : int }

let create () = { map = M.empty; entries = 0 }

let add t key rid =
  let rids = Option.value ~default:[] (M.find_opt key t.map) in
  t.map <- M.add key (rid :: rids) t.map;
  t.entries <- t.entries + 1

let remove t key rid =
  match M.find_opt key t.map with
  | None -> ()
  | Some rids ->
      let rest = List.filter (fun r -> r <> rid) rids in
      if List.length rest < List.length rids then t.entries <- t.entries - 1;
      t.map <-
        (if rest = [] then M.remove key t.map else M.add key rest t.map)

let lookup t key =
  List.sort Int.compare (Option.value ~default:[] (M.find_opt key t.map))

let range t ?lo ?hi () =
  (* Trim the map with split (O(log n)), then walk the remainder. *)
  let m = t.map in
  let m =
    match lo with
    | None -> m
    | Some (v, inclusive) ->
        let _, at, above = M.split v m in
        let above =
          match at with
          | Some rids when inclusive -> M.add v rids above
          | _ -> above
        in
        above
  in
  let m =
    match hi with
    | None -> m
    | Some (v, inclusive) ->
        let below, at, _ = M.split v m in
        let below =
          match at with
          | Some rids when inclusive -> M.add v rids below
          | _ -> below
        in
        below
  in
  List.concat_map
    (fun (_, rids) -> List.sort Int.compare rids)
    (M.bindings m)

let cardinality t = t.entries
