type column = {
  name : string;
  ty : Sloth_sql.Ast.col_type;
  nullable : bool;
}

type t = {
  table_name : string;
  columns : column array;
  by_name : (string, int) Hashtbl.t;
  primary_key : string option;
}

let create ~name ?primary_key columns =
  let by_name = Hashtbl.create 16 in
  List.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Schema: duplicate column %s" c.name);
      Hashtbl.replace by_name c.name i)
    columns;
  (match primary_key with
  | Some pk when not (Hashtbl.mem by_name pk) ->
      invalid_arg (Printf.sprintf "Schema: primary key %s is not a column" pk)
  | _ -> ());
  {
    table_name = name;
    columns = Array.of_list columns;
    by_name;
    primary_key;
  }

let of_ast ~table defs ~primary_key =
  let columns =
    List.map
      (fun (d : Sloth_sql.Ast.column_def) ->
        { name = d.cd_name; ty = d.cd_type; nullable = d.cd_nullable })
      defs
  in
  create ~name:table ?primary_key columns

let name t = t.table_name
let columns t = Array.to_list t.columns
let arity t = Array.length t.columns
let primary_key t = t.primary_key
let column_index t c = Hashtbl.find_opt t.by_name c

let column_index_exn t c =
  match Hashtbl.find_opt t.by_name c with
  | Some i -> i
  | None -> raise Not_found

let mem t c = Hashtbl.mem t.by_name c

let validate_row t row =
  if Array.length row <> Array.length t.columns then
    Error
      (Printf.sprintf "table %s expects %d columns, got %d" t.table_name
         (Array.length t.columns) (Array.length row))
  else
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then
          let c = t.columns.(i) in
          if v = Value.Null && not c.nullable then
            err :=
              Some (Printf.sprintf "column %s.%s is NOT NULL" t.table_name c.name)
          else if not (Value.matches_type v c.ty) then
            err :=
              Some
                (Printf.sprintf "column %s.%s: type mismatch for value %s"
                   t.table_name c.name (Value.to_string v)))
      row;
    match !err with None -> Ok () | Some m -> Error m
