(** Query results shipped from the database server to the application. *)

type t

val create : columns:string list -> Value.t array list -> t
val empty : t

val columns : t -> string list
val rows : t -> Value.t array list
val num_rows : t -> int

val column_index : t -> string -> int option

val cell : t -> row:int -> string -> Value.t
(** Raises [Not_found] if the column does not exist, [Invalid_argument] on a
    bad row index. *)

val first : t -> Value.t array option
(** The first row, if any. *)

val scalar : t -> Value.t option
(** The single cell of a 1x1 result (aggregates), if the shape matches. *)

val size_bytes : t -> int
(** Approximate wire size of the result payload. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
