(** An ordered (balanced-tree) secondary index supporting range scans.

    Complements the hash indexes in {!Table}: equality probes stay O(1)
    there; range predicates ([<], [<=], [>], [>=], [BETWEEN]) resolve here
    in O(log n + k).  Non-unique: each key maps to the rids holding it. *)

type t

val create : unit -> t
val add : t -> Value.t -> int -> unit
val remove : t -> Value.t -> int -> unit

val lookup : t -> Value.t -> int list
(** Rids with exactly this key, ascending. *)

val range : t -> ?lo:Value.t * bool -> ?hi:Value.t * bool -> unit -> int list
(** [range t ~lo:(v, incl) ~hi:(w, incl) ()] — rids whose key lies between
    the bounds (each side optional; the bool is inclusiveness), in
    ascending (key, rid) order. *)

val cardinality : t -> int
(** Total number of (key, rid) entries. *)
