(** Row-level evaluation of SQL expressions.

    An environment is the ordered list of table bindings visible to the
    expression: [(binding_name, schema, row)].  The binding name is the
    table alias if one was given, otherwise the table name.  Unqualified
    columns resolve to the first binding that has them. *)

type env = (string * Schema.t * Value.t array) list

exception Error of string

val eval : env -> Sloth_sql.Ast.expr -> Value.t
(** NULL handling follows the engine's documented simplification of SQL
    three-valued logic: comparisons involving NULL yield FALSE, arithmetic
    involving NULL yields NULL, [IS NULL] tests work as usual.  Aggregates
    are rejected here (the executor computes them over groups). *)

val eval_const : Sloth_sql.Ast.expr -> Value.t
(** Evaluate a closed expression (no column references). *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE: ['%'] matches any run, ['_'] any single character. *)

val resolve : env -> string option -> string -> Value.t
(** Column lookup; raises {!Error} when unknown or ambiguous qualifier. *)
