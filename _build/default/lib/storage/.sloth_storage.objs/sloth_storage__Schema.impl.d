lib/storage/schema.ml: Array Hashtbl List Printf Sloth_sql Value
