lib/storage/cost.mli:
