lib/storage/table.mli: Schema Value
