lib/storage/eval.ml: Array Format List Schema Sloth_sql String Value
