lib/storage/ordered_index.mli: Value
