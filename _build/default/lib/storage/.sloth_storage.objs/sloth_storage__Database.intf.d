lib/storage/database.mli: Cost Result_set Schema Sloth_sql Table
