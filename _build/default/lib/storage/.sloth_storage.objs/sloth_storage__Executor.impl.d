lib/storage/executor.ml: Array Eval Format Hashtbl Int List Option Result_set Schema Sloth_sql String Table Txn Value
