lib/storage/value.ml: Bool Float Format Int Printf Sloth_sql String
