lib/storage/result_set.mli: Format Value
