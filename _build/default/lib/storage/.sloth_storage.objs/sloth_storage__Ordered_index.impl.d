lib/storage/ordered_index.ml: Int List Map Option Value
