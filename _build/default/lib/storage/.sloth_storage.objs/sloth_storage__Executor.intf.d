lib/storage/executor.mli: Result_set Schema Sloth_sql Table Txn
