lib/storage/txn.ml: List Table Value
