lib/storage/vec.mli:
