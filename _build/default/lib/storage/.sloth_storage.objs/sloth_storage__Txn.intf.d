lib/storage/txn.mli: Table Value
