lib/storage/table.ml: Array Hashtbl Int List Option Ordered_index Printf Schema String Value Vec
