lib/storage/eval.mli: Schema Sloth_sql Value
