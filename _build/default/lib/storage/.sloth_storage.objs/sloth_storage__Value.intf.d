lib/storage/value.mli: Format Sloth_sql
