lib/storage/database.ml: Cost Executor Format Hashtbl Option Result_set Schema Sloth_sql Table Txn
