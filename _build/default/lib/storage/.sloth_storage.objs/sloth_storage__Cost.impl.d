lib/storage/cost.ml: Float List
