lib/storage/schema.mli: Sloth_sql Value
