lib/storage/vec.ml: Array List
