lib/storage/result_set.ml: Array Format List String Value
