(** Statement execution against a catalog of tables.

    The executor is deliberately planner-free: the only optimization is
    using a hash index for equality predicates (primary key or secondary),
    both for base-table selection and for equi-joins.  Everything else is a
    deterministic scan in row-id order. *)

type catalog = {
  find_table : string -> Table.t option;
  add_table : Schema.t -> unit;  (** raises {!Sql_error} if it exists *)
}

type outcome = {
  rs : Result_set.t;
  rows_scanned : int;  (** rows examined, feeding the cost model *)
  rows_affected : int;  (** for writes *)
}

exception Sql_error of string

val execute :
  catalog -> ?log:(Txn.entry -> unit) -> Sloth_sql.Ast.stmt -> outcome
(** Execute SELECT / INSERT / UPDATE / DELETE / CREATE TABLE.  Transaction
    control statements are the database layer's business and raise
    {!Sql_error} here.  [log] receives undo entries for heap mutations. *)
