module type S = sig
  val name : string
  val immediate : bool

  type 'a v

  val pure : 'a -> 'a v
  val map : ('a -> 'b) -> 'a v -> 'b v
  val map2 : ('a -> 'b -> 'c) -> 'a v -> 'b v -> 'c v
  val all : 'a v list -> 'a list v
  val bind : ('a -> 'b v) -> 'a v -> 'b v
  val get : 'a v -> 'a

  val query :
    Sloth_sql.Ast.stmt -> (Sloth_storage.Result_set.t -> 'a) -> 'a v

  val command : Sloth_sql.Ast.stmt -> int
  val to_thunk : 'a v -> 'a Thunk.t
  val defer : (unit -> 'a v) -> 'a Thunk.t
end

module Eager (C : sig
  val conn : Sloth_driver.Connection.t
end) =
struct
  let name = "eager"
  let immediate = true

  type 'a v = 'a

  let pure v = v
  let map f v = f v
  let map2 f a b = f a b
  let all vs = vs
  let bind f v = f v
  let get v = v

  let query stmt deserialize =
    let outcome = Sloth_driver.Connection.execute C.conn stmt in
    deserialize outcome.rs

  let command stmt =
    let outcome = Sloth_driver.Connection.execute C.conn stmt in
    outcome.rows_affected

  let to_thunk v = Thunk.literal v
  let defer f = Thunk.create f
end

module Lazy (Q : sig
  val store : Query_store.t
end) =
struct
  let name = "sloth"
  let immediate = false

  type 'a v = 'a Thunk.t

  let pure v = Thunk.literal v
  let map = Thunk.map
  let map2 = Thunk.map2
  let all = Thunk.all
  let bind f t = Thunk.join (Thunk.map f t)
  let get = Thunk.force

  let query stmt deserialize =
    let id = Query_store.register Q.store stmt in
    Thunk.create (fun () -> deserialize (Query_store.result Q.store id))

  let command stmt =
    let id = Query_store.register Q.store stmt in
    Query_store.rows_affected Q.store id

  let to_thunk v = v
  let defer f = f ()
end

module Prefetch (C : sig
  val conn : Sloth_driver.Connection.t
end) =
struct
  let name = "prefetch"
  let immediate = false

  type 'a v = 'a Thunk.t

  let pure v = Thunk.literal v
  let map = Thunk.map
  let map2 = Thunk.map2
  let all = Thunk.all
  let bind f t = Thunk.join (Thunk.map f t)
  let get = Thunk.force

  let query stmt deserialize =
    (* Issue now, overlap with computation, block only at consumption. *)
    let handle = Sloth_driver.Connection.execute_async C.conn stmt in
    Thunk.create (fun () ->
        deserialize (Sloth_driver.Connection.await C.conn handle).rs)

  let command stmt =
    (* Writes cannot be outstanding past their program point. *)
    let handle = Sloth_driver.Connection.execute_async C.conn stmt in
    (Sloth_driver.Connection.await C.conn handle).rows_affected

  let to_thunk v = v
  let defer f = f ()
end
