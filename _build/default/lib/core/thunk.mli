(** Thunks: the unit of deferred computation (paper Sec. 3.2).

    A thunk remembers a suspended computation; {!force} runs it once and
    memoizes the result, so repeated forcing is free (beyond the bookkeeping
    charge).  [literal] corresponds to the paper's [LiteralThunk]: a wrapper
    for an already-computed value, with no allocation or force cost — it is
    what the eager execution strategy uses, so eager code pays nothing. *)

type 'a t

val create : (unit -> 'a) -> 'a t
(** Suspend a computation.  Charges one allocation to {!Runtime}. *)

val literal : 'a -> 'a t
(** An already-forced thunk.  Free of runtime charges. *)

val force : 'a t -> 'a
(** Run the suspended computation (first time only; the result is memoized).
    Charges one force to {!Runtime} when actual work is performed.  If the
    computation raises, the exception is memoized and re-raised on
    subsequent forces — mirroring the paper's limitation that exceptions
    surface at force time rather than creation time (Sec. 3.7). *)

val is_forced : 'a t -> bool

val map : ('a -> 'b) -> 'a t -> 'b t
(** Lazily apply a function; allocates a new thunk. *)

val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val both : 'a t -> 'b t -> ('a * 'b) t
val join : 'a t t -> 'a t
val all : 'a t list -> 'a list t
(** Force all when forced. *)
