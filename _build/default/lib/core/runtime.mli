(** Global accounting for the lazy-evaluation runtime.

    The paper's evaluation hinges on laziness having a real cost (Sec. 6.6):
    every thunk allocation and every force consumes application-server time.
    Experiments install a virtual clock here; thunk operations then charge
    the App category.  Counters are also kept so the optimization ablation
    (Fig. 12) can report allocation savings directly.

    The runtime is a process-wide singleton because thunks are created in
    arbitrary application code; experiments run sequentially and call
    {!reset} between measurements. *)

val set_clock : Sloth_net.Vclock.t option -> unit
val clock : unit -> Sloth_net.Vclock.t option

val alloc_cost_ms : unit -> float
val force_cost_ms : unit -> float

val set_costs : alloc_ms:float -> force_ms:float -> unit
(** Defaults: 0.02 ms per allocation, 0.008 ms per force — calibrated so
    the TPC overhead experiment lands in the paper's 5–15 % band. *)

val charge_app : float -> unit
(** Charge arbitrary App time to the installed clock (interpreter ticks,
    framework work). *)

val charge_alloc : unit -> unit
val charge_force : unit -> unit

val allocs : unit -> int
val forces : unit -> int

val reset : unit -> unit
(** Zero the counters (costs and clock binding are kept). *)
