type 'a state =
  | Delayed of (unit -> 'a)
  | Forced of 'a
  | Failed of exn

type 'a t = { mutable state : 'a state }

let create f =
  Runtime.charge_alloc ();
  { state = Delayed f }

let literal v = { state = Forced v }

let force t =
  match t.state with
  | Forced v -> v
  | Failed e -> raise e
  | Delayed f -> (
      Runtime.charge_force ();
      match f () with
      | v ->
          t.state <- Forced v;
          v
      | exception e ->
          t.state <- Failed e;
          raise e)

let is_forced t = match t.state with Delayed _ -> false | _ -> true
let map f t = create (fun () -> f (force t))
let map2 f a b = create (fun () -> f (force a) (force b))
let both a b = map2 (fun a b -> (a, b)) a b
let join t = create (fun () -> force (force t))
let all ts = create (fun () -> List.map force ts)
