(** Execution strategies: the OCaml equivalent of compiling the application
    twice.

    The paper's Sloth compiler rewrites Java so every statement builds a
    thunk; the original binary executes statements immediately.  Here the
    same application code is written once against the {!S} signature and
    instantiated with either {!Eager} (original semantics: a query call is a
    round trip, computation happens now) or {!Lazy} (extended lazy
    semantics: queries register with a query store, computation is
    deferred). *)

module type S = sig
  val name : string

  val immediate : bool
  (** [true] when queries execute at the call (the original program):
      frameworks use this to reproduce eager-fetching behaviour that only
      makes sense under immediate execution. *)

  type 'a v
  (** A possibly-deferred value. *)

  val pure : 'a -> 'a v
  val map : ('a -> 'b) -> 'a v -> 'b v
  val map2 : ('a -> 'b -> 'c) -> 'a v -> 'b v -> 'c v
  val all : 'a v list -> 'a list v

  val bind : ('a -> 'b v) -> 'a v -> 'b v
  (** Dependent computation: the function runs (and may register its own
      queries) only once the input is forced. *)

  val get : 'a v -> 'a
  (** Demand the value now (forces under the lazy strategy).  Application
      code calls this exactly where the paper's semantics force a thunk:
      branch conditions it cannot defer, heap writes, query parameters,
      calls into external code. *)

  val query :
    Sloth_sql.Ast.stmt -> (Sloth_storage.Result_set.t -> 'a) -> 'a v
  (** A read query together with its deserialization function.  Eager:
      executes in its own round trip now.  Lazy: registers with the query
      store; the result is deserialized (once) when forced. *)

  val command : Sloth_sql.Ast.stmt -> int
  (** A write statement; never deferred (Sec. 3.3).  Returns rows
      affected.  Under the lazy strategy this flushes pending reads into
      the same round trip. *)

  val to_thunk : 'a v -> 'a Thunk.t
  (** Expose the value as a thunk for storage in view models.  Eager values
      become free literal thunks. *)

  val defer : (unit -> 'a v) -> 'a Thunk.t
  (** The ORM proxy point (the paper's JPA [find_thunk] extension, Sec. 5).
      Under the original strategy this is a Hibernate-style lazy-fetch
      proxy: nothing happens until the thunk is forced (typically at view
      render), and unforced proxies never query.  Under Sloth the
      computation runs now — registering its queries with the store — and
      the result is the deferred value itself. *)
end

module Eager (C : sig
  val conn : Sloth_driver.Connection.t
end) : S with type 'a v = 'a

module Lazy (Q : sig
  val store : Query_store.t
end) : S with type 'a v = 'a Thunk.t

module Prefetch (C : sig
  val conn : Sloth_driver.Connection.t
end) : S with type 'a v = 'a Thunk.t
(** The latency-hiding baseline the paper contrasts with (Sec. 1): each
    query is issued asynchronously as soon as it is evaluated, the round
    trip overlapping subsequent computation; consumption blocks for
    whatever part of the trip computation did not hide.  One round trip per
    query — no batching — so it loses to Sloth whenever there is not enough
    computation between issue and use. *)
