module Conn = Sloth_driver.Connection
module Rs = Sloth_storage.Result_set

let log_src = Logs.Src.create "sloth.query_store" ~doc:"Query store batching"

type query_id = int

type flush_policy = On_demand | At_size of int

type event =
  | Registered of query_id * string
  | Dedup_hit of query_id * string
  | Write_through of query_id * string
  | Batch_sent of (query_id * string) list
  | Result_served of query_id

type entry = {
  stmt : Sloth_sql.Ast.stmt;
  sql : string;  (* canonical text, the dedup key *)
  mutable result : Sloth_storage.Database.outcome option;
}

type t = {
  conn : Conn.t;
  policy : flush_policy;
  entries : (query_id, entry) Hashtbl.t;
  mutable batch : query_id list;  (* pending, newest first *)
  mutable next_id : int;
  mutable batches_sent : int;
  mutable max_batch_size : int;
  mutable registered : int;
  mutable tracer : (event -> unit) option;
}

let create ?(policy = On_demand) conn =
  {
    conn;
    policy;
    entries = Hashtbl.create 64;
    batch = [];
    next_id = 0;
    batches_sent = 0;
    max_batch_size = 0;
    registered = 0;
    tracer = None;
  }

let connection t = t.conn
let policy t = t.policy
let set_tracer t tracer = t.tracer <- tracer
let emit t event = match t.tracer with Some f -> f event | None -> ()

let entry t id = Hashtbl.find t.entries id

let fresh_id t stmt sql =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.entries id { stmt; sql; result = None };
  id

let send t ids =
  match ids with
  | [] -> ()
  | _ ->
      let ids = List.rev ids in
      Logs.debug ~src:log_src (fun m ->
          m "shipping batch of %d queries" (List.length ids));
      emit t (Batch_sent (List.map (fun id -> (id, (entry t id).sql)) ids));
      let stmts = List.map (fun id -> (entry t id).stmt) ids in
      let outcomes = Conn.execute_batch t.conn stmts in
      List.iter2
        (fun id outcome -> (entry t id).result <- Some outcome)
        ids outcomes;
      t.batches_sent <- t.batches_sent + 1;
      let n = List.length ids in
      if n > t.max_batch_size then t.max_batch_size <- n

let flush t =
  let ids = t.batch in
  t.batch <- [];
  send t ids

let register t stmt =
  t.registered <- t.registered + 1;
  let sql = Sloth_sql.Printer.to_string stmt in
  if Sloth_sql.Ast.is_write stmt then begin
    (* Writes are never deferred: flush pending reads together with the
       write in a single round trip (reads first, preserving order). *)
    let id = fresh_id t stmt sql in
    emit t (Write_through (id, sql));
    let ids = id :: t.batch in
    t.batch <- [];
    send t ids;
    id
  end
  else
    (* Dedup against the *pending* batch only. *)
    let dup =
      List.find_opt (fun id -> String.equal (entry t id).sql sql) t.batch
    in
    match dup with
    | Some id ->
        emit t (Dedup_hit (id, sql));
        id
    | None ->
        let id = fresh_id t stmt sql in
        emit t (Registered (id, sql));
        t.batch <- id :: t.batch;
        (match t.policy with
        | At_size k when List.length t.batch >= k -> flush t
        | _ -> ());
        id

let register_sql t sql = register t (Sloth_sql.Parser.parse sql)

let result t id =
  let e = entry t id in
  (match e.result with
  | None -> flush t
  | Some _ -> emit t (Result_served id));
  match (entry t id).result with
  | Some outcome -> outcome.rs
  | None ->
      (* Cannot happen: the id was either pending (flushed above) or already
         executed. *)
      assert false

let rows_affected t id =
  let e = entry t id in
  (match e.result with None -> flush t | Some _ -> ());
  match (entry t id).result with
  | Some outcome -> outcome.rows_affected
  | None -> assert false

let is_available t id = (entry t id).result <> None
let pending t = List.length t.batch
let batches_sent t = t.batches_sent
let max_batch_size t = t.max_batch_size
let registered t = t.registered
let sql_of_id t id = (entry t id).sql

let pp_event ppf = function
  | Registered (id, sql) -> Format.fprintf ppf "register [Q%d] %s" id sql
  | Dedup_hit (id, sql) -> Format.fprintf ppf "dedup -> [Q%d] %s" id sql
  | Write_through (id, sql) ->
      Format.fprintf ppf "write-through [Q%d] %s" id sql
  | Batch_sent batch ->
      Format.fprintf ppf "batch sent (%d):" (List.length batch);
      List.iter (fun (id, sql) -> Format.fprintf ppf " [Q%d] %s;" id sql) batch
  | Result_served id -> Format.fprintf ppf "cached result [Q%d]" id
