type t = {
  mutable clock : Sloth_net.Vclock.t option;
  mutable alloc_cost_ms : float;
  mutable force_cost_ms : float;
  mutable allocs : int;
  mutable forces : int;
}

let the =
  {
    clock = None;
    alloc_cost_ms = 0.02;
    force_cost_ms = 0.008;
    allocs = 0;
    forces = 0;
  }

let set_clock c = the.clock <- c
let clock () = the.clock
let alloc_cost_ms () = the.alloc_cost_ms
let force_cost_ms () = the.force_cost_ms

let set_costs ~alloc_ms ~force_ms =
  the.alloc_cost_ms <- alloc_ms;
  the.force_cost_ms <- force_ms

let charge cost =
  match the.clock with
  | None -> ()
  | Some clock -> Sloth_net.Vclock.advance clock Sloth_net.Vclock.App cost

let charge_alloc () =
  the.allocs <- the.allocs + 1;
  charge the.alloc_cost_ms

let charge_force () =
  the.forces <- the.forces + 1;
  charge the.force_cost_ms

let charge_app ms = charge ms

let allocs () = the.allocs
let forces () = the.forces

let reset () =
  the.allocs <- 0;
  the.forces <- 0
