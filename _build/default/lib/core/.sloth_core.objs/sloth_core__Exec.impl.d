lib/core/exec.ml: Query_store Sloth_driver Sloth_sql Sloth_storage Thunk
