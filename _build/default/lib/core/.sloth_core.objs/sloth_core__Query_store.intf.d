lib/core/query_store.mli: Format Sloth_driver Sloth_sql Sloth_storage
