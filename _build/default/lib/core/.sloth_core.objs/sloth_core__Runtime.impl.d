lib/core/runtime.ml: Sloth_net
