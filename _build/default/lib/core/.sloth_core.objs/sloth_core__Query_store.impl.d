lib/core/query_store.ml: Format Hashtbl List Logs Sloth_driver Sloth_sql Sloth_storage String
