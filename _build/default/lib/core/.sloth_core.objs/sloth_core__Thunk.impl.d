lib/core/thunk.ml: List Runtime
