lib/core/runtime.mli: Sloth_net
