lib/core/thunk.mli:
