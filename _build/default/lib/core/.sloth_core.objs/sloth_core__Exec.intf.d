lib/core/exec.mli: Query_store Sloth_driver Sloth_sql Sloth_storage Thunk
