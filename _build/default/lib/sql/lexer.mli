(** Hand-written lexer for the SQL dialect. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** unquoted identifier, original case preserved *)
  | KEYWORD of string  (** upper-cased reserved word *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | SEMI
  | OP of string  (** '=', '<>', '<', '<=', '>', '>=', '+', '-', '/' *)
  | EOF

exception Error of string * int  (** message, byte offset *)

val tokenize : string -> token list
(** Raises {!Error} on malformed input (unterminated string, bad char). *)

val pp_token : Format.formatter -> token -> unit
