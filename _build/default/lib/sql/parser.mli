(** Recursive-descent parser for the SQL dialect.

    Accepts exactly the statements described in {!module:Ast}; operator
    precedence is OR < AND < NOT < comparison < additive < multiplicative
    < unary minus. *)

exception Error of string
(** Raised on syntax errors; the message names the offending token. *)

val parse : string -> Ast.stmt
(** Parse a single statement (a trailing [';'] is allowed). *)

val parse_expr : string -> Ast.expr
(** Parse a stand-alone expression — used by tests. *)
