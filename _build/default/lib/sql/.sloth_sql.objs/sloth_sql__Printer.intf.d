lib/sql/printer.mli: Ast Format
