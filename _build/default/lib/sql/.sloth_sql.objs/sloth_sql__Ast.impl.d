lib/sql/ast.ml:
