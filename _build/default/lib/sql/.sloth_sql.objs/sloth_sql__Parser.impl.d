lib/sql/parser.ml: Ast Format Lexer List Option
