lib/sql/lexer.ml: Buffer Format Hashtbl List Printf String
