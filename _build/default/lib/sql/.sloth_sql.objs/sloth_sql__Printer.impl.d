lib/sql/printer.ml: Ast Buffer Format List Option Printf String
