(** Typed access to result-set rows during entity hydration. *)

type t

val of_result_set : Sloth_storage.Result_set.t -> t list

exception Hydration_error of string

val int : t -> string -> int
(** Raises {!Hydration_error} on missing column or wrong type. *)

val int_opt : t -> string -> int option
(** [None] for SQL NULL. *)

val str : t -> string -> string
val str_opt : t -> string -> string option
val float : t -> string -> float
val bool : t -> string -> bool
val value : t -> string -> Sloth_storage.Value.t

val to_list : t -> (string * Sloth_storage.Value.t) list
(** All columns in result order. *)

val of_list : (string * Sloth_storage.Value.t) list -> t
