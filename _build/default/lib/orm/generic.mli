(** Untyped ("generic") entities: rows as entities.

    The two evaluation applications have dozens of small administrative
    tables whose pages are structurally identical; generic entities let
    those pages share one implementation while the rich domain entities
    (patients, encounters, issues, …) keep typed records. *)

module type ROW_ENTITY = sig
  type t = Row.t

  val desc : t Desc.t
end

val entity :
  table:string ->
  ?key:string ->
  columns:(string * Sloth_sql.Ast.col_type) list ->
  ?assocs:Desc.assoc list ->
  unit ->
  (module ROW_ENTITY)
(** [key] defaults to ["id"]; [columns] must include it. *)
