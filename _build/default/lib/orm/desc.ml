(** Entity descriptors: the ORM's mapping configuration.

    A descriptor plays the role of a Hibernate mapping file: table name,
    integer primary key, column list, (de)serialization functions and
    association fetch strategies.  The paper's discussion of lazy vs. eager
    fetching (Sec. 1) maps onto {!fetch}: [Eager_fetch] associations are
    loaded immediately with the owning entity under the original execution
    strategy, possibly wastefully; [Lazy_fetch] associations are loaded on
    first access. *)

type fetch = Lazy_fetch | Eager_fetch

type assoc = {
  assoc_name : string;
  child_table : string;
  fk_column : string;  (** column on the child table referencing the key *)
  fetch : fetch;
}

type 'a t = {
  table : string;
  key : string;  (** integer primary-key column *)
  columns : (string * Sloth_sql.Ast.col_type) list;  (** including the key *)
  assocs : assoc list;
  of_row : Row.t -> 'a;
  to_row : 'a -> (string * Sloth_storage.Value.t) list;
}

let create_table_stmt d =
  let columns =
    List.map
      (fun (name, ty) ->
        {
          Sloth_sql.Ast.cd_name = name;
          cd_type = ty;
          cd_nullable = not (String.equal name d.key);
        })
      d.columns
  in
  Sloth_sql.Ast.Create_table
    { table = d.table; columns; primary_key = Some d.key }

let assoc d name =
  match List.find_opt (fun a -> String.equal a.assoc_name name) d.assocs with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "entity %s has no association %s" d.table name)
