module Value = Sloth_storage.Value

type t = (string * Value.t) list

exception Hydration_error of string

let error fmt = Format.kasprintf (fun s -> raise (Hydration_error s)) fmt

let of_result_set rs =
  let columns = Sloth_storage.Result_set.columns rs in
  List.map
    (fun row -> List.mapi (fun i c -> (c, row.(i))) columns)
    (Sloth_storage.Result_set.rows rs)

let value t c =
  match List.assoc_opt c t with
  | Some v -> v
  | None -> error "no column %s in row" c

let int t c =
  match value t c with
  | Value.Int n -> n
  | v -> error "column %s: expected int, got %s" c (Value.to_string v)

let int_opt t c =
  match value t c with
  | Value.Null -> None
  | Value.Int n -> Some n
  | v -> error "column %s: expected int or null, got %s" c (Value.to_string v)

let str t c =
  match value t c with
  | Value.Text s -> s
  | v -> error "column %s: expected text, got %s" c (Value.to_string v)

let str_opt t c =
  match value t c with
  | Value.Null -> None
  | Value.Text s -> Some s
  | v -> error "column %s: expected text or null, got %s" c (Value.to_string v)

let float t c =
  match value t c with
  | Value.Float f -> f
  | Value.Int n -> float_of_int n
  | v -> error "column %s: expected float, got %s" c (Value.to_string v)

let bool t c =
  match value t c with
  | Value.Bool b -> b
  | v -> error "column %s: expected bool, got %s" c (Value.to_string v)

let to_list t = t
let of_list l = l
