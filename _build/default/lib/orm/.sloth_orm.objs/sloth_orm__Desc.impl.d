lib/orm/desc.ml: List Printf Row Sloth_sql Sloth_storage String
