lib/orm/row.ml: Array Format List Sloth_storage
