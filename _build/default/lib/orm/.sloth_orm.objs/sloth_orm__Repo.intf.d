lib/orm/repo.mli: Desc Row Sloth_core Sloth_sql Sloth_storage
