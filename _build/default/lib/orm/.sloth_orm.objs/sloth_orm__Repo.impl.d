lib/orm/repo.ml: Desc Hashtbl List Option Row Sloth_core Sloth_sql Sloth_storage
