lib/orm/generic.ml: Desc Fun Row
