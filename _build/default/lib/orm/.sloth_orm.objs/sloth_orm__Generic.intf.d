lib/orm/generic.mli: Desc Row Sloth_sql
