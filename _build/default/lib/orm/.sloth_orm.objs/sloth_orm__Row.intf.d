lib/orm/row.mli: Sloth_storage
