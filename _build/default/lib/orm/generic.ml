module type ROW_ENTITY = sig
  type t = Row.t

  val desc : t Desc.t
end

let entity ~table ?(key = "id") ~columns ?(assocs = []) () =
  (module struct
    type t = Row.t

    let desc =
      {
        Desc.table;
        key;
        columns;
        assocs;
        of_row = Fun.id;
        to_row = Row.to_list;
      }
  end : ROW_ENTITY)
