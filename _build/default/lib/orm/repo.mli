(** Repositories: typed data access over an execution strategy.

    A repository instance corresponds to one Hibernate session's view of one
    entity: it carries a first-level cache (find-by-id and association
    results are fetched once per session) and applies the entity's fetch
    strategies.

    Under the eager strategy ([X.immediate]), [Eager_fetch] associations are
    loaded together with the owning entity — one extra query per
    association, used or not, exactly the waste the paper attributes to
    eager fetching.  Under the Sloth strategy nothing is fetched until the
    association is first accessed, and then only registered with the query
    store. *)

module Make (X : Sloth_core.Exec.S) (E : sig
  type t

  val desc : t Desc.t
end) : sig
  val find : int -> E.t option X.v
  (** Fetch by primary key; cached per repository instance. *)

  val find_exn : int -> E.t X.v
  (** Like {!find} but the deferred value raises [Not_found] when absent. *)

  val all : ?order_by:string -> ?limit:int -> unit -> E.t list X.v

  val where :
    ?order_by:string -> ?limit:int -> Sloth_sql.Ast.expr -> E.t list X.v

  val find_by : string -> Sloth_storage.Value.t -> E.t list X.v
  (** Equality on one column. *)

  val count : ?where:Sloth_sql.Ast.expr -> unit -> int X.v

  val assoc_rows : string -> int -> Row.t list X.v
  (** [assoc_rows name parent_id]: rows of the named association, honouring
      its fetch strategy and the session cache. *)

  val insert : E.t -> unit
  val update_fields : int -> (string * Sloth_storage.Value.t) list -> int
  val delete : int -> int

  val create_table : unit -> unit
  (** Issue the entity's CREATE TABLE.  Association foreign-key indexes are
      created by the data generators directly on the database. *)
end

val lit : Sloth_storage.Value.t -> Sloth_sql.Ast.expr
(** Embed a runtime value as a SQL literal expression. *)
