open Ast

type t = { mutable next : int }

let create () = { next = 0 }

let fresh t =
  let id = t.next in
  t.next <- id + 1;
  id

let num n = Const (C_num n)
let str s = Const (C_str s)
let bool_ b = Const (C_bool b)
let null = Const C_null
let var x = Var x
let field e f = Field (e, f)
let record fields = Record fields
let index a i = Index (a, i)
let array es = Array_lit es
let len e = Length e
let call f args = Call (f, args)
let read e = Read e
let ( +% ) a b = Binop (Add, a, b)
let ( -% ) a b = Binop (Sub, a, b)
let ( *% ) a b = Binop (Mul, a, b)
let ( /% ) a b = Binop (Div, a, b)
let ( %% ) a b = Binop (Mod, a, b)
let ( =% ) a b = Binop (Eq, a, b)
let ( <% ) a b = Binop (Lt, a, b)
let ( >% ) a b = Binop (Gt, a, b)
let ( &&% ) a b = Binop (And, a, b)
let ( ||% ) a b = Binop (Or, a, b)
let not_ e = Unop (Not, e)

let mk t s = { sid = fresh t; s }
let skip t = mk t Skip
let assign t x e = mk t (Assign (L_var x, e))
let set_field t target f e = mk t (Assign (L_field (target, f), e))
let set_index t target i e = mk t (Assign (L_index (target, i), e))
let if_ t c a b = mk t (If (c, a, b))
let while_ t body = mk t (While body)
let break t = mk t Break
let write t e = mk t (Write e)
let print t e = mk t (Print e)
let expr_stmt t e = mk t (Expr_stmt e)

let seq t stmts =
  match stmts with
  | [] -> skip t
  | first :: rest -> List.fold_left (fun acc s -> mk t (Seq (acc, s))) first rest

let return t e = assign t return_var e

let for_range t x ~from ~below body =
  let init = assign t x from in
  let guard = if_ t (not_ (var x <% below)) (break t) (skip t) in
  let step = assign t x (var x +% num 1) in
  let loop = while_ t (seq t [ guard; body (var x); step ]) in
  seq t [ init; loop ]

let func ?(external_fn = false) fname params body =
  { fname; params; body; external_fn }

let program funcs main = { funcs; main }
