(** Parser for the kernel language's concrete syntax — the same syntax
    {!Pretty} prints, so [parse (Pretty.program_to_string p)] rebuilds [p]
    (up to statement ids; checked by a qcheck property).

    Grammar sketch:
    {v
    program  := func* main-block
    func     := ["external"] "function" name "(" params ")" "{" stmt* "}"
    main     := "main" "{" stmt* "}"
    stmt     := lvalue "=" expr ";" | "if" "(" expr ")" block "else" block
              | "while" "(" "true" ")" block | "break" ";" | "skip" ";"
              | "W" "(" expr ")" ";" | "print" "(" expr ")" ";" | expr ";"
    expr     := ||, &&, !, == < >, + -, * / %, unary -, postfix .f [e],
                literals, ident, f(args), R(e), len(e),
                {f = e, ...}, [e, ...], (e)
    v} *)

exception Error of string

val parse : string -> Ast.program
val parse_expr : string -> Ast.expr
