lib/kernel/parser.ml: Ast Buffer Builder Format List Scanf String
