lib/kernel/analysis.mli: Ast
