lib/kernel/heap.ml: Array Hashtbl Kvalue List Printf String
