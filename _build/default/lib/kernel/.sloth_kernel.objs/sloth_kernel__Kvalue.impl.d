lib/kernel/kvalue.ml: Ast Format Printf Sloth_core Sloth_storage String
