lib/kernel/builder.mli: Ast
