lib/kernel/lazy_eval.mli: Ast Hashtbl Heap Kvalue Sloth_core
