lib/kernel/analysis.ml: Ast Hashtbl List Option Set String
