lib/kernel/lazy_eval.ml: Analysis Array Ast Hashtbl Heap Kvalue List Option Sloth_core Sloth_storage
