lib/kernel/pretty.mli: Ast
