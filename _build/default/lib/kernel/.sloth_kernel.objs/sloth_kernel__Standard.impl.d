lib/kernel/standard.ml: Array Ast Hashtbl Heap Kvalue List Option Sloth_core Sloth_driver Sloth_storage
