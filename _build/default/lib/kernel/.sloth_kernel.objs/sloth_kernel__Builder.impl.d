lib/kernel/builder.ml: Ast List
