lib/kernel/kvalue.mli: Ast Format Sloth_core Sloth_storage
