lib/kernel/ast.ml: List String
