lib/kernel/parser.mli: Ast
