lib/kernel/heap.mli: Hashtbl Kvalue
