lib/kernel/generator.mli: Ast QCheck Random Sloth_storage
