lib/kernel/generator.ml: Ast Builder List Pretty Printf QCheck Random Sloth_storage
