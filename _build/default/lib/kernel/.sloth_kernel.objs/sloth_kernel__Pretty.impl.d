lib/kernel/pretty.ml: Ast List Printf String
