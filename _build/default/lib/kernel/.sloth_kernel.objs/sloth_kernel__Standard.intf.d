lib/kernel/standard.mli: Ast Hashtbl Heap Kvalue Sloth_driver
