(** The program heap of the kernel language: records and arrays. *)

type hobj =
  | H_record of (string, Kvalue.t) Hashtbl.t
  | H_array of Kvalue.t array

type t = { objs : (int, hobj) Hashtbl.t; mutable next : int }

let create () = { objs = Hashtbl.create 64; next = 0 }

let alloc t obj =
  let addr = t.next in
  t.next <- addr + 1;
  Hashtbl.replace t.objs addr obj;
  addr

let get t addr =
  match Hashtbl.find_opt t.objs addr with
  | Some obj -> obj
  | None -> Kvalue.error "dangling address %d" addr

let alloc_record t fields =
  let tbl = Hashtbl.create (List.length fields) in
  List.iter (fun (f, v) -> Hashtbl.replace tbl f v) fields;
  alloc t (H_record tbl)

let alloc_array t values = alloc t (H_array (Array.of_list values))

let get_field t addr f =
  match get t addr with
  | H_record tbl -> (
      match Hashtbl.find_opt tbl f with
      | Some v -> v
      | None -> Kvalue.error "no field %s" f)
  | H_array _ -> Kvalue.error "field access on an array"

let set_field t addr f v =
  match get t addr with
  | H_record tbl -> Hashtbl.replace tbl f v
  | H_array _ -> Kvalue.error "field write on an array"

let get_index t addr i =
  match get t addr with
  | H_array a ->
      if i < 0 || i >= Array.length a then
        Kvalue.error "array index %d out of bounds (length %d)" i
          (Array.length a)
      else a.(i)
  | H_record _ -> Kvalue.error "index access on a record"

let set_index t addr i v =
  match get t addr with
  | H_array a ->
      if i < 0 || i >= Array.length a then
        Kvalue.error "array index %d out of bounds (length %d)" i
          (Array.length a)
      else a.(i) <- v
  | H_record _ -> Kvalue.error "index write on a record"

let length t addr =
  match get t addr with
  | H_array a -> Array.length a
  | H_record _ -> Kvalue.error "length of a record"

let sorted_fields tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Force every thunk reachable from [v], in place for heap objects. *)
let rec deep_force t v =
  match Kvalue.force v with
  | Kvalue.V_addr addr as v ->
      (match get t addr with
      | H_record tbl ->
          List.iter
            (fun (f, fv) -> Hashtbl.replace tbl f (deep_force t fv))
            (sorted_fields tbl)
      | H_array a ->
          Array.iteri (fun i av -> a.(i) <- deep_force t av) a);
      v
  | v -> v

(* Render a value for Print: scalars inline, heap structures recursively
   with sorted record fields so output is deterministic.  Forces thunks. *)
let rec render t v =
  match Kvalue.force v with
  | Kvalue.V_addr addr -> (
      match get t addr with
      | H_record tbl ->
          let fields =
            List.map
              (fun (f, fv) -> Printf.sprintf "%s=%s" f (render t fv))
              (sorted_fields tbl)
          in
          "{" ^ String.concat ", " fields ^ "}"
      | H_array a ->
          let items = Array.to_list (Array.map (render t) a) in
          "[" ^ String.concat ", " items ^ "]")
  | v -> Kvalue.to_display_string v

(* Structural isomorphism between values in two heaps, used by the
   soundness tests: addresses are compared up to a consistent bijection.
   Thunks are forced along the way. *)
let iso ha va hb vb =
  let mapping = Hashtbl.create 16 in
  let rec go va vb =
    match (Kvalue.force va, Kvalue.force vb) with
    | Kvalue.V_addr a, Kvalue.V_addr b -> (
        match Hashtbl.find_opt mapping a with
        | Some b' -> b = b'
        | None -> (
            Hashtbl.replace mapping a b;
            match (get ha a, get hb b) with
            | H_record ta, H_record tb ->
                let fa = sorted_fields ta and fb = sorted_fields tb in
                List.length fa = List.length fb
                && List.for_all2
                     (fun (na, va) (nb, vb) -> String.equal na nb && go va vb)
                     fa fb
            | H_array aa, H_array ab ->
                Array.length aa = Array.length ab
                && Array.for_all2 (fun x y -> go x y) aa ab
            | _ -> false))
    | va, vb -> va = vb
  in
  go va vb
