(** Convenience eDSL for constructing kernel-language programs.

    Statement ids must be unique within a program; the builder hands them
    out from a private counter, so always build a whole program with one
    builder. *)

type t

val create : unit -> t

(* expressions (no ids needed) *)
val num : int -> Ast.expr
val str : string -> Ast.expr
val bool_ : bool -> Ast.expr
val null : Ast.expr
val var : string -> Ast.expr
val field : Ast.expr -> string -> Ast.expr
val record : (string * Ast.expr) list -> Ast.expr
val index : Ast.expr -> Ast.expr -> Ast.expr
val array : Ast.expr list -> Ast.expr
val len : Ast.expr -> Ast.expr
val call : string -> Ast.expr list -> Ast.expr
val read : Ast.expr -> Ast.expr
val ( +% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( -% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( *% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( /% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( %% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( =% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( &&% ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ||% ) : Ast.expr -> Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr

(* statements (fresh ids from the builder) *)
val skip : t -> Ast.stmt
val assign : t -> string -> Ast.expr -> Ast.stmt
val set_field : t -> Ast.expr -> string -> Ast.expr -> Ast.stmt
val set_index : t -> Ast.expr -> Ast.expr -> Ast.expr -> Ast.stmt
val if_ : t -> Ast.expr -> Ast.stmt -> Ast.stmt -> Ast.stmt
val while_ : t -> Ast.stmt -> Ast.stmt
val break : t -> Ast.stmt
val write : t -> Ast.expr -> Ast.stmt
val print : t -> Ast.expr -> Ast.stmt
val expr_stmt : t -> Ast.expr -> Ast.stmt
val seq : t -> Ast.stmt list -> Ast.stmt
val return : t -> Ast.expr -> Ast.stmt
(** Assign the function's return variable. *)

val for_range : t -> string -> from:Ast.expr -> below:Ast.expr -> (Ast.expr -> Ast.stmt) -> Ast.stmt
(** Desugars a counted loop into the kernel's [while(True)] + guarded
    [Break] form, exactly as the paper's code-simplification pass does. *)

val func :
  ?external_fn:bool -> string -> string list -> Ast.stmt -> Ast.func

val program : Ast.func list -> Ast.stmt -> Ast.program
