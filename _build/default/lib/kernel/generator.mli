(** Random kernel-language programs.

    Two uses:
    - the soundness property test (standard ≡ extended-lazy after forcing)
      runs randomly generated programs under both evaluators;
    - the Fig. 11 experiment labels synthetic corpora shaped like the
      paper's applications with the persistence analysis.

    Generated programs are well-typed by construction (separate integer,
    string and record variable pools, all initialized by a prologue),
    terminate (loops are bounded counted loops, call graphs are acyclic)
    and never raise at runtime (no division by variables, all query keys
    stay within the seeded key range). *)

type config = {
  n_funcs : int;  (** functions besides main *)
  stmts_per_block : int;  (** approximate statements per body *)
  max_depth : int;  (** nesting depth of if/while *)
  query_weight : int;  (** relative frequency of R/W statements, 0-10 *)
  external_fraction : float;  (** fraction of functions marked external *)
}

val default_config : config

val setup_schema : Sloth_storage.Database.t -> unit
(** Create and seed the [kv] table the generated queries run against
    (keys 1..20). *)

val program : Random.State.t -> config -> Ast.program

val gen : config -> Ast.program QCheck.Gen.t
(** qcheck wrapper around {!program}. *)

val arbitrary : config -> Ast.program QCheck.arbitrary
(** With a program printer attached for counterexample reports. *)
