(** The program heap of the kernel language: mutable records and arrays. *)

type hobj =
  | H_record of (string, Kvalue.t) Hashtbl.t
  | H_array of Kvalue.t array

type t

val create : unit -> t
val alloc : t -> hobj -> int
val get : t -> int -> hobj

val alloc_record : t -> (string * Kvalue.t) list -> int
val alloc_array : t -> Kvalue.t list -> int

val get_field : t -> int -> string -> Kvalue.t
val set_field : t -> int -> string -> Kvalue.t -> unit
val get_index : t -> int -> int -> Kvalue.t
val set_index : t -> int -> int -> Kvalue.t -> unit
val length : t -> int -> int

val deep_force : t -> Kvalue.t -> Kvalue.t
(** Force every thunk reachable from the value, updating heap cells in
    place; returns the forced root. *)

val render : t -> Kvalue.t -> string
(** Deterministic textual rendering (records with sorted fields) used by
    [Print]; forces whatever it shows. *)

val iso : t -> Kvalue.t -> t -> Kvalue.t -> bool
(** Structural isomorphism between values living in two heaps: addresses
    are compared up to a consistent mapping, thunks are forced along the
    way.  This is the equality of the soundness theorem. *)
