open Ast
module SS = Set.Make (String)

type group = { leader : int; members : int list; outputs : string list }

type t = {
  program : program;
  persistent : SS.t;
  pure : SS.t;
  deferrable_memo : (int, bool) Hashtbl.t;
  groups : (int, group) Hashtbl.t;  (* keyed by leader sid *)
  group_members : (int, int) Hashtbl.t;  (* member sid -> leader sid *)
  body_uses : (int, (string, int) Hashtbl.t) Hashtbl.t;
      (* sid -> usage counts of the enclosing body *)
  main_persistent : bool;
}

(* --- syntactic facts ---------------------------------------------------- *)

let expr_has_read e =
  let found = ref false in
  iter_exprs_of_expr (function Read _ -> found := true | _ -> ()) e;
  !found

(* Heap accesses are "thunk evaluations" in the paper's sense (the target
   must be forced, and the cell read observes mutable state), so they
   disqualify both deferrable statements and deferrable (pure) functions:
   deferring a heap read past a heap write would change its result. *)
let expr_has_heap_access e =
  let found = ref false in
  iter_exprs_of_expr
    (function Field _ | Index _ | Length _ -> found := true | _ -> ())
    e;
  !found

let stmt_tree_has_heap_access stmt =
  let found = ref false in
  iter_exprs (fun e -> if expr_has_heap_access e then found := true) stmt;
  !found

let stmt_tree_has_read stmt =
  let found = ref false in
  iter_exprs (fun e -> if expr_has_read e then found := true) stmt;
  !found

let expr_calls e =
  let acc = ref SS.empty in
  iter_exprs_of_expr
    (function Call (f, _) -> acc := SS.add f !acc | _ -> ())
    e;
  !acc

let stmt_tree_calls stmt =
  let acc = ref SS.empty in
  iter_exprs (fun e -> acc := SS.union (expr_calls e) !acc) stmt;
  !acc

let stmt_tree_has_query stmt =
  let found = ref false in
  iter_stmts (fun s -> match s.s with Write _ -> found := true | _ -> ()) stmt;
  iter_exprs (fun e -> if expr_has_read e then found := true) stmt;
  !found

let stmt_tree_has_impure_stmt stmt =
  (* Write, Print, or heap writes anywhere in the subtree. *)
  let found = ref false in
  iter_stmts
    (fun s ->
      match s.s with
      | Write _ | Print _
      | Assign (L_field _, _)
      | Assign (L_index _, _) ->
          found := true
      | _ -> ())
    stmt;
  !found

(* --- fixpoints over the call graph -------------------------------------- *)

(* Least fixpoint of: f in set if [direct f] or f calls a member of set. *)
let callgraph_fixpoint program ~direct =
  let calls_of =
    List.map (fun f -> (f.fname, stmt_tree_calls f.body)) program.funcs
  in
  let set =
    ref
      (List.fold_left
         (fun acc f -> if direct f then SS.add f.fname acc else acc)
         SS.empty program.funcs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fname, calls) ->
        if (not (SS.mem fname !set)) && not (SS.is_empty (SS.inter calls !set))
        then begin
          set := SS.add fname !set;
          changed := true
        end)
      calls_of
  done;
  !set

(* Greatest fixpoint for purity: start from all candidates, remove functions
   that are directly impure or call something outside the set. *)
let purity_fixpoint program =
  let calls_of =
    List.map (fun f -> (f.fname, stmt_tree_calls f.body)) program.funcs
  in
  let directly_impure f =
    f.external_fn
    || stmt_tree_has_impure_stmt f.body
    (* Deferring a body that reads the heap or the database would observe
       mutations that happen between call site and force. *)
    || stmt_tree_has_heap_access f.body
    || stmt_tree_has_read f.body
  in
  let set =
    ref
      (List.fold_left
         (fun acc f -> if directly_impure f then acc else SS.add f.fname acc)
         SS.empty program.funcs)
  in
  let known f = List.exists (fun g -> String.equal g.fname f) program.funcs in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fname, calls) ->
        if
          SS.mem fname !set
          && SS.exists (fun g -> (not (known g)) || not (SS.mem g !set)) calls
        then begin
          set := SS.remove fname !set;
          changed := true
        end)
      calls_of
  done;
  !set

(* --- deferrable statements ---------------------------------------------- *)

let rec deferrable_rec t ~loop_depth stmt =
  let expr_ok e =
    (not (expr_has_read e))
    && (not (expr_has_heap_access e))
    && SS.for_all
         (fun f ->
           SS.mem f t.pure
           && (not (SS.mem f t.persistent))
           &&
           match find_func t.program f with
           | Some fn -> not fn.external_fn
           | None -> false)
         (expr_calls e)
  in
  match stmt.s with
  | Skip -> true
  | Assign (L_var _, e) -> expr_ok e
  | Assign (L_field _, _) | Assign (L_index _, _) ->
      (* Heap writes are never deferred (Sec. 3.5). *)
      false
  | Write _ | Print _ -> false
  | Break -> loop_depth > 0
  | Seq (a, b) ->
      deferrable_rec t ~loop_depth a && deferrable_rec t ~loop_depth b
  | If (c, a, b) ->
      expr_ok c
      && deferrable_rec t ~loop_depth a
      && deferrable_rec t ~loop_depth b
  | While body -> deferrable_rec t ~loop_depth:(loop_depth + 1) body
  | Expr_stmt e -> expr_ok e

let deferrable t stmt =
  match Hashtbl.find_opt t.deferrable_memo stmt.sid with
  | Some b -> b
  | None ->
      let b = deferrable_rec t ~loop_depth:0 stmt in
      Hashtbl.replace t.deferrable_memo stmt.sid b;
      b

(* --- variable uses ------------------------------------------------------ *)

let expr_uses e =
  let acc = ref SS.empty in
  iter_exprs_of_expr (function Var x -> acc := SS.add x !acc | _ -> ()) e;
  !acc

let stmt_tree_var_defs stmt =
  let acc = ref SS.empty in
  iter_stmts
    (fun s ->
      match s.s with
      | Assign (L_var x, _) -> acc := SS.add x !acc
      | _ -> ())
    stmt;
  !acc

(* --- coalescing groups --------------------------------------------------- *)

(* A statement may join a coalescing group if it is a deferrable simple
   variable assignment — the temporary chains code simplification
   introduces.  Deferrable control flow is branch deferral's territory
   (Sec. 4.2), kept separate as in the paper. *)
let groupable t stmt =
  match stmt.s with
  | Assign (L_var _, _) -> deferrable t stmt
  | _ -> false

(* Variable uses of a single statement *node*: the expressions evaluated by
   the node itself (an [If]'s condition, an assignment's right-hand side),
   not those of nested statements — they are their own nodes. *)
let node_uses s =
  List.fold_left
    (fun acc e -> SS.union acc (expr_uses e))
    SS.empty (exprs_of_stmt s)

let add_group t ~func_uses ~in_loop stmts =
  match stmts with
  | [] | [ _ ] -> ()  (* coalescing a single statement buys nothing *)
  | leader :: _ ->
      let members = List.map (fun s -> s.sid) stmts in
      let defs =
        List.fold_left
          (fun acc s -> SS.union acc (stmt_tree_var_defs s))
          SS.empty stmts
      in
      (* Number of statement nodes *anywhere inside the group* using each
         variable (members may be compound statements). *)
      let inside_count x =
        let count = ref 0 in
        List.iter
          (fun s ->
            iter_stmts
              (fun s' -> if SS.mem x (node_uses s') then incr count)
              s)
          stmts;
        !count
      in
      (* A defined variable escapes if some statement node outside the group
         uses it, or it is the return variable.  Inside a loop the group
         re-executes, so its own reads are loop-carried uses of the previous
         iteration's value: in-group uses may not be discounted there. *)
      let outputs =
        SS.filter
          (fun x ->
            String.equal x return_var
            ||
            let total = Option.value ~default:0 (Hashtbl.find_opt func_uses x) in
            let inside = if in_loop then 0 else inside_count x in
            total > inside)
          defs
      in
      let group =
        { leader = leader.sid; members; outputs = SS.elements outputs }
      in
      Hashtbl.replace t.groups leader.sid group;
      List.iter (fun sid -> Hashtbl.replace t.group_members sid leader.sid)
        members

let build_groups t body =
  (* Usage counts at statement-node granularity over the whole body. *)
  let func_uses = Hashtbl.create 32 in
  iter_stmts
    (fun s ->
      SS.iter
        (fun x ->
          Hashtbl.replace func_uses x
            (1 + Option.value ~default:0 (Hashtbl.find_opt func_uses x)))
        (node_uses s))
    body;
  iter_stmts (fun s -> Hashtbl.replace t.body_uses s.sid func_uses) body;
  (* Collect every Seq chain in the body (including nested ones), tracking
     whether it sits inside a loop, and split each into maximal groupable
     runs. *)
  let chains = ref [] in
  let rec collect ~in_loop stmt =
    match stmt.s with
    | Seq _ ->
        let chain = flatten stmt in
        chains := (in_loop, chain) :: !chains;
        List.iter (collect_children ~in_loop) chain
    | _ -> collect_children ~in_loop stmt
  and collect_children ~in_loop stmt =
    match stmt.s with
    | If (_, a, b) ->
        collect ~in_loop a;
        collect ~in_loop b
    | While inner -> collect ~in_loop:true inner
    | Seq _ -> collect ~in_loop stmt
    | _ -> ()
  in
  collect ~in_loop:false body;
  List.iter
    (fun (in_loop, chain) ->
      let run = ref [] in
      let flush () =
        add_group t ~func_uses ~in_loop (List.rev !run);
        run := []
      in
      List.iter
        (fun s -> if groupable t s then run := s :: !run else flush ())
        chain;
      flush ())
    !chains

(* --- entry point --------------------------------------------------------- *)

let analyze program =
  let persistent =
    callgraph_fixpoint program ~direct:(fun f -> stmt_tree_has_query f.body)
  in
  let pure = purity_fixpoint program in
  let t =
    {
      program;
      persistent;
      pure;
      deferrable_memo = Hashtbl.create 64;
      groups = Hashtbl.create 16;
      group_members = Hashtbl.create 64;
      body_uses = Hashtbl.create 256;
      main_persistent =
        stmt_tree_has_query program.main
        || SS.exists
             (fun f -> SS.mem f persistent)
             (stmt_tree_calls program.main);
    }
  in
  build_groups t program.main;
  List.iter (fun f -> build_groups t f.body) program.funcs;
  t

let persistent t name =
  match find_func t.program name with
  | None -> true
  | Some _ -> SS.mem name t.persistent

let pure t name = SS.mem name t.pure
let main_persistent t = t.main_persistent
let group_of_leader t sid = Hashtbl.find_opt t.groups sid
let in_group t sid = Hashtbl.mem t.group_members sid

let persistent_count t =
  let p = SS.cardinal t.persistent in
  (p, List.length t.program.funcs - p)

let stmt_var_defs stmt = SS.elements (stmt_tree_var_defs stmt)

let used_in_enclosing_body t sid x =
  match Hashtbl.find_opt t.body_uses sid with
  | None -> true (* unknown statement: be conservative *)
  | Some uses -> Option.value ~default:0 (Hashtbl.find_opt uses x) > 0

let stmts_var_defs stmts =
  SS.elements
    (List.fold_left
       (fun acc s -> SS.union acc (stmt_tree_var_defs s))
       SS.empty stmts)
