(** Source rendering of kernel-language programs, for debugging output and
    qcheck counterexample printing. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val program_to_string : Ast.program -> string
