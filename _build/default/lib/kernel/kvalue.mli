(** Runtime values of the kernel language.

    [V_thunk] only ever appears under the extended-lazy evaluator; the
    standard evaluator never constructs one.  Heap objects are referenced
    by address, so structural comparison across two evaluations goes
    through {!Heap.iso} rather than [=]. *)

type t =
  | V_num of int
  | V_str of string
  | V_bool of bool
  | V_null
  | V_addr of int
  | V_thunk of t Sloth_core.Thunk.t

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

val force : t -> t
(** Force through nested thunks to a non-thunk value. *)

val of_const : Ast.const -> t
val of_sql_value : Sloth_storage.Value.t -> t

val truthy : t -> bool
(** Raises on an unforced thunk — callers force first. *)

val to_display_string : t -> string

val binop : Ast.binop -> t -> t -> t
(** On forced scalars; [Add] doubles as string concatenation with coercion
    (the formalization builds SQL strings this way). *)

val unop : Ast.unop -> t -> t
