(** Runtime values of the kernel language.

    [V_thunk] only ever appears under the extended-lazy evaluator; the
    standard evaluator never constructs one.  Heap objects are referenced by
    address; structural comparison across two evaluations therefore goes
    through {!Heap.iso} rather than [=]. *)

type t =
  | V_num of int
  | V_str of string
  | V_bool of bool
  | V_null
  | V_addr of int
  | V_thunk of t Sloth_core.Thunk.t

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let rec force = function V_thunk t -> force (Sloth_core.Thunk.force t) | v -> v

let of_const = function
  | Ast.C_num n -> V_num n
  | Ast.C_str s -> V_str s
  | Ast.C_bool b -> V_bool b
  | Ast.C_null -> V_null

let truthy = function
  | V_bool b -> b
  | V_num n -> n <> 0
  | V_null -> false
  | V_str s -> s <> ""
  | V_addr _ -> true
  | V_thunk _ -> error "truthiness of an unforced thunk"

let to_display_string = function
  | V_num n -> string_of_int n
  | V_str s -> s
  | V_bool b -> string_of_bool b
  | V_null -> "null"
  | V_addr a -> Printf.sprintf "<addr %d>" a
  | V_thunk _ -> "<thunk>"

(* Binary operations on *forced* scalar values.  Add doubles as string
   concatenation (with coercion) — the formalization builds SQL query
   strings this way. *)
let binop op a b =
  let num_op f =
    match (a, b) with
    | V_num x, V_num y -> V_num (f x y)
    | _ ->
        error "numeric operation on %s and %s" (to_display_string a)
          (to_display_string b)
  in
  match op with
  | Ast.Add -> (
      match (a, b) with
      | V_num x, V_num y -> V_num (x + y)
      | (V_str _, _ | _, V_str _) ->
          V_str (to_display_string a ^ to_display_string b)
      | _ ->
          error "cannot add %s and %s" (to_display_string a)
            (to_display_string b))
  | Ast.Sub -> num_op ( - )
  | Ast.Mul -> num_op ( * )
  | Ast.Div ->
      num_op (fun x y -> if y = 0 then error "division by zero" else x / y)
  | Ast.Mod ->
      num_op (fun x y -> if y = 0 then error "modulo by zero" else x mod y)
  | Ast.And -> V_bool (truthy a && truthy b)
  | Ast.Or -> V_bool (truthy a || truthy b)
  | Ast.Eq -> (
      match (a, b) with
      | V_num x, V_num y -> V_bool (x = y)
      | V_str x, V_str y -> V_bool (String.equal x y)
      | V_bool x, V_bool y -> V_bool (x = y)
      | V_null, V_null -> V_bool true
      | V_addr x, V_addr y -> V_bool (x = y)
      | _ -> V_bool false)
  | Ast.Lt -> (
      match (a, b) with
      | V_num x, V_num y -> V_bool (x < y)
      | V_str x, V_str y -> V_bool (String.compare x y < 0)
      | _ ->
          error "cannot compare %s and %s" (to_display_string a)
            (to_display_string b))
  | Ast.Gt -> (
      match (a, b) with
      | V_num x, V_num y -> V_bool (x > y)
      | V_str x, V_str y -> V_bool (String.compare x y > 0)
      | _ ->
          error "cannot compare %s and %s" (to_display_string a)
            (to_display_string b))

let unop op v =
  match (op, v) with
  | Ast.Not, v -> V_bool (not (truthy v))
  | Ast.Neg, V_num n -> V_num (-n)
  | Ast.Neg, _ -> error "cannot negate %s" (to_display_string v)

let of_sql_value = function
  | Sloth_storage.Value.Null -> V_null
  | Sloth_storage.Value.Int n -> V_num n
  | Sloth_storage.Value.Float f -> V_num (int_of_float f)
  | Sloth_storage.Value.Text s -> V_str s
  | Sloth_storage.Value.Bool b -> V_bool b
