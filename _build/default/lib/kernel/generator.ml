open Builder
module B = Builder

type config = {
  n_funcs : int;
  stmts_per_block : int;
  max_depth : int;
  query_weight : int;
  external_fraction : float;
}

let default_config =
  {
    n_funcs = 4;
    stmts_per_block = 6;
    max_depth = 2;
    query_weight = 3;
    external_fraction = 0.2;
  }

let key_space = 20

let setup_schema db =
  ignore
    (Sloth_storage.Database.exec_sql db
       "CREATE TABLE kv (k INT NOT NULL, v TEXT NOT NULL, n INT NOT NULL, \
        PRIMARY KEY (k))");
  for i = 1 to key_space do
    ignore
      (Sloth_storage.Database.exec_sql db
         (Printf.sprintf "INSERT INTO kv (k, v, n) VALUES (%d, 'w%d', %d)" i i
            (i * 3 mod 7)))
  done

(* Variable pools.  Every generated body initializes all of them in a
   prologue, so references are always bound. *)
let int_vars = [ "x0"; "x1"; "x2"; "x3"; "x4" ]
let str_vars = [ "s0"; "s1"; "s2" ]
let rec_vars = [ "r0"; "r1" ]

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* A key expression guaranteed to hit an existing row: ((e mod K) + K) mod K + 1. *)
let key_of e =
  Binop (Ast.Mod, Binop (Ast.Add, Binop (Ast.Mod, e, num key_space), num key_space), num key_space)
  +% num 1

let read_row_sql key_expr =
  read (str "SELECT v AS v, n AS n FROM kv WHERE k = " +% key_of key_expr)

let read_count_sql bound_expr =
  read (str "SELECT COUNT(*) AS n FROM kv WHERE n > " +% bound_expr)

let write_sql value_expr key_expr =
  str "UPDATE kv SET n = " +% value_expr +% str " WHERE k = " +% key_of key_expr

(* --- expressions -------------------------------------------------------- *)

(* [funcs_below] lists callable functions (int -> int -> int), acyclic by
   construction: a function may only call earlier ones. *)
let rec int_expr rng cfg ~funcs_below ~depth =
  if depth <= 0 then
    match Random.State.int rng 3 with
    | 0 -> num (Random.State.int rng 10)
    | _ -> var (pick rng int_vars)
  else
    match Random.State.int rng 12 with
    | 0 | 1 -> num (Random.State.int rng 10)
    | 2 | 3 | 4 -> var (pick rng int_vars)
    | 5 ->
        int_expr rng cfg ~funcs_below ~depth:(depth - 1)
        +% int_expr rng cfg ~funcs_below ~depth:(depth - 1)
    | 6 ->
        int_expr rng cfg ~funcs_below ~depth:(depth - 1)
        -% int_expr rng cfg ~funcs_below ~depth:(depth - 1)
    | 7 ->
        int_expr rng cfg ~funcs_below ~depth:(depth - 1)
        *% num (1 + Random.State.int rng 3)
    | 8 ->
        (* Modulo by a positive constant only: no runtime failures. *)
        Binop
          ( Ast.Mod,
            int_expr rng cfg ~funcs_below ~depth:(depth - 1),
            num (2 + Random.State.int rng 5) )
    | 9 -> Unop (Ast.Neg, int_expr rng cfg ~funcs_below ~depth:(depth - 1))
    | 10 -> field (var (pick rng rec_vars)) "a"
    | _ -> (
        match funcs_below with
        | [] -> var (pick rng int_vars)
        | fs ->
            let f = pick rng fs in
            call f
              [
                int_expr rng cfg ~funcs_below:[] ~depth:(depth - 1);
                int_expr rng cfg ~funcs_below:[] ~depth:(depth - 1);
              ])

let str_expr rng cfg ~funcs_below ~depth =
  match Random.State.int rng 5 with
  | 0 -> str (pick rng [ "a"; "bb"; "c!"; "" ])
  | 1 | 2 -> var (pick rng str_vars)
  | 3 -> field (var (pick rng rec_vars)) "b"
  | _ ->
      var (pick rng str_vars)
      +% int_expr rng cfg ~funcs_below ~depth:(min depth 1)

let bool_expr rng cfg ~funcs_below ~depth =
  let ie () = int_expr rng cfg ~funcs_below ~depth:(min depth 1) in
  match Random.State.int rng 6 with
  | 0 -> ie () <% ie ()
  | 1 -> ie () >% ie ()
  | 2 -> ie () =% ie ()
  | 3 -> (ie () <% ie ()) &&% (ie () >% ie ())
  | 4 -> (ie () =% ie ()) ||% (ie () <% ie ())
  | _ -> not_ (ie () <% ie ())

(* --- statements --------------------------------------------------------- *)

let rec gen_stmt b rng cfg ~funcs_below ~depth ~in_loop =
  let ie ?(d = depth) () = int_expr rng cfg ~funcs_below ~depth:d in
  let se () = str_expr rng cfg ~funcs_below ~depth in
  let roll = Random.State.int rng (20 + cfg.query_weight * 3) in
  if roll >= 20 then
    (* query statements, weighted by [query_weight] *)
    match roll mod 3 with
    | 0 ->
        B.assign b (pick rng int_vars)
          (field (index (read_count_sql (ie ())) (num 0)) "n")
    | 1 ->
        B.assign b (pick rng str_vars)
          (field (index (read_row_sql (ie ())) (num 0)) "v")
    | _ -> B.write b (write_sql (ie ()) (ie ()))
  else
    match roll with
    | 0 | 1 | 2 | 3 | 4 -> B.assign b (pick rng int_vars) (ie ())
    | 5 | 6 -> B.assign b (pick rng str_vars) (se ())
    | 7 -> B.set_field b (var (pick rng rec_vars)) "a" (ie ())
    | 8 -> B.set_field b (var (pick rng rec_vars)) "b" (se ())
    | 9 -> B.assign b (pick rng rec_vars) (record [ ("a", ie ()); ("b", se ()) ])
    | 10 | 11 ->
        if depth <= 0 then B.assign b (pick rng int_vars) (ie ())
        else
          B.if_ b
            (bool_expr rng cfg ~funcs_below ~depth)
            (gen_block b rng cfg ~funcs_below ~depth:(depth - 1) ~in_loop
               ~n:(1 + Random.State.int rng 3))
            (gen_block b rng cfg ~funcs_below ~depth:(depth - 1) ~in_loop
               ~n:(1 + Random.State.int rng 2))
    | 12 ->
        if depth <= 0 then B.assign b (pick rng int_vars) (ie ())
        else
          (* Loop counters live outside the assignable pool so generated
             bodies cannot reset them: loops always terminate. *)
          let loop_var = Printf.sprintf "i%d" depth in
          B.for_range b loop_var ~from:(num 0)
            ~below:(num (1 + Random.State.int rng 3))
            (fun _i ->
              gen_block b rng cfg ~funcs_below ~depth:(depth - 1)
                ~in_loop:true
                ~n:(1 + Random.State.int rng 2))
    | 13 -> B.print b (ie ())
    | 14 -> B.print b (se ())
    | 15 when in_loop && Random.State.int rng 4 = 0 ->
        (* A guarded early exit, like the paper's desugared break. *)
        B.if_ b (bool_expr rng cfg ~funcs_below ~depth:0) (B.break b) (B.skip b)
    | _ -> B.assign b (pick rng int_vars) (ie ~d:(min depth 1) ())

and gen_block b rng cfg ~funcs_below ~depth ~in_loop ~n =
  B.seq b
    (List.init n (fun _ -> gen_stmt b rng cfg ~funcs_below ~depth ~in_loop))

(* Prologue: bind every pool variable. *)
let prologue b rng =
  let ints =
    List.map (fun x -> B.assign b x (num (Random.State.int rng 10))) int_vars
  in
  let strs =
    List.map (fun s -> B.assign b s (str (pick rng [ "p"; "qq"; "r" ]))) str_vars
  in
  let recs =
    List.map
      (fun r ->
        B.assign b r
          (record [ ("a", num (Random.State.int rng 5)); ("b", str "init") ]))
      rec_vars
  in
  ints @ strs @ recs

let gen_func b rng cfg ~index ~funcs_below =
  let fname = Printf.sprintf "f%d" index in
  let external_fn = Random.State.float rng 1.0 < cfg.external_fraction in
  let cfg =
    (* External bodies are executed strictly; keep them small and
       query-free so "library code" stays plausible. *)
    if external_fn then { cfg with query_weight = 0 } else cfg
  in
  let body_stmts =
    List.init cfg.stmts_per_block (fun _ ->
        gen_stmt b rng cfg ~funcs_below ~depth:cfg.max_depth ~in_loop:false)
  in
  let ret = B.return b (int_expr rng cfg ~funcs_below ~depth:1) in
  let params = [ "p0"; "p1" ] in
  (* The prologue binds the whole pool; parameters are then folded into two
     of the integer variables so they influence the result. *)
  let body =
    B.seq b
      (prologue b rng
      @ [
          B.assign b "x2" (var "p0" %% num 10);
          B.assign b "x3" (var "p1" %% num 10);
        ]
      @ body_stmts @ [ ret ])
  in
  B.func ~external_fn fname params body

let program rng cfg =
  let b = B.create () in
  let funcs =
    let rec build i acc =
      if i >= cfg.n_funcs then List.rev acc
      else
        let funcs_below = List.map (fun (f : Ast.func) -> f.fname) acc in
        build (i + 1) (gen_func b rng cfg ~index:i ~funcs_below :: acc)
    in
    build 0 []
  in
  let fnames = List.map (fun (f : Ast.func) -> f.fname) funcs in
  let main_stmts =
    List.init cfg.stmts_per_block (fun _ ->
        gen_stmt b rng cfg ~funcs_below:fnames ~depth:cfg.max_depth
          ~in_loop:false)
  in
  let epilogue =
    (* Observe the final state so laziness has something to force. *)
    List.map (fun x -> B.print b (var x)) (int_vars @ str_vars)
  in
  let main = B.seq b (prologue b rng @ main_stmts @ epilogue) in
  B.program funcs main

let gen cfg rng = program rng cfg
let arbitrary cfg = QCheck.make (gen cfg) ~print:Pretty.program_to_string
