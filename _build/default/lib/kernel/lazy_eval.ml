open Ast
module Thunk = Sloth_core.Thunk
module Store = Sloth_core.Query_store

type opts = { sc : bool; tc : bool; bd : bool }

let no_opts = { sc = false; tc = false; bd = false }
let all_opts = { sc = true; tc = true; bd = true }

type result = {
  env : (string, Kvalue.t) Hashtbl.t;
  heap : Heap.t;
  output : string list;
}

exception Fuel_exhausted
exception Break_exn

type ctx = {
  program : program;
  store : Store.t;
  heap : Heap.t;
  analysis : Analysis.t;
  opts : opts;
  mutable output : string list;  (* reversed *)
  mutable fuel : int;
}

(* Every interpretation step costs a sliver of application CPU, so lazy
   evaluation's extra work (thunk bodies re-walked at force time) shows up
   in the App category alongside the per-thunk charges. *)
let tick_cost_ms = ref 0.003

let tick ctx =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then raise Fuel_exhausted;
  Sloth_core.Runtime.charge_app !tick_cost_ms

let lookup env x =
  match Hashtbl.find_opt env x with
  | Some v -> v
  | None -> Kvalue.error "unbound variable %s" x

let as_addr what v =
  match Kvalue.force v with
  | Kvalue.V_addr a -> a
  | v ->
      Kvalue.error "%s expects a heap object, got %s" what
        (Kvalue.to_display_string v)

let as_num what v =
  match Kvalue.force v with
  | Kvalue.V_num n -> n
  | v ->
      Kvalue.error "%s expects a number, got %s" what
        (Kvalue.to_display_string v)

let as_str what v =
  match Kvalue.force v with
  | Kvalue.V_str s -> s
  | v ->
      Kvalue.error "%s expects a string, got %s" what
        (Kvalue.to_display_string v)

let deserialize ctx rs =
  let columns = Sloth_storage.Result_set.columns rs in
  let rows =
    List.map
      (fun row ->
        let fields =
          List.mapi (fun i c -> (c, Kvalue.of_sql_value row.(i))) columns
        in
        Kvalue.V_addr (Heap.alloc_record ctx.heap fields))
      (Sloth_storage.Result_set.rows rs)
  in
  Kvalue.V_addr (Heap.alloc_array ctx.heap rows)

(* Register a read query and return the memoizing thunk over its result —
   the [Read query] evaluation rule: registration is eager, consumption is
   deferred. *)
let register_read ctx sql =
  let id = Store.register_sql ctx.store sql in
  Thunk.create (fun () -> deserialize ctx (Store.result ctx.store id))

let fn_strict ctx fname =
  (* Should a call to [fname] run strictly (no thunks in its body)?
     External functions always do; with SC, so do non-persistent ones. *)
  match find_func ctx.program fname with
  | None -> Kvalue.error "unknown function %s" fname
  | Some f ->
      f.external_fn || (ctx.opts.sc && not (Analysis.persistent ctx.analysis fname))

let fn_deferrable ctx fname =
  (* May a call be deferred into a thunk?  Internal pure functions only. *)
  match find_func ctx.program fname with
  | None -> false
  | Some f -> (not f.external_fn) && Analysis.pure ctx.analysis fname

(* ====================================================================== *)
(* Strict evaluation: used inside forced thunk bodies, for external /
   SC-compiled functions, and for deferred blocks once they fire.  Thunks
   encountered in the environment or heap are forced at use. *)
(* ====================================================================== *)

let rec eval_strict ctx env expr =
  tick ctx;
  match expr with
  | Const c -> Kvalue.of_const c
  | Var x -> Kvalue.force (lookup env x)
  | Field (e, f) ->
      Kvalue.force (Heap.get_field ctx.heap (as_addr "field access" (eval_strict ctx env e)) f)
  | Record fields ->
      let vs = List.map (fun (f, e) -> (f, eval_strict ctx env e)) fields in
      Kvalue.V_addr (Heap.alloc_record ctx.heap vs)
  | Array_lit es ->
      let vs = List.map (eval_strict ctx env) es in
      Kvalue.V_addr (Heap.alloc_array ctx.heap vs)
  | Index (ea, ei) ->
      let a = as_addr "indexing" (eval_strict ctx env ea) in
      let i = as_num "index" (eval_strict ctx env ei) in
      Kvalue.force (Heap.get_index ctx.heap a i)
  | Length e ->
      Kvalue.V_num (Heap.length ctx.heap (as_addr "length" (eval_strict ctx env e)))
  | Binop (op, a, b) ->
      let va = eval_strict ctx env a in
      let vb = eval_strict ctx env b in
      Kvalue.binop op va vb
  | Unop (op, e) -> Kvalue.unop op (eval_strict ctx env e)
  | Call (f, args) ->
      let vs = List.map (eval_strict ctx env) args in
      call_strict ctx f vs
  | Read e ->
      (* Strict code consumes the result immediately: register and force,
         which flushes the pending batch — semantically one round trip
         carrying whatever was pending plus this query. *)
      let sql = as_str "R()" (eval_strict ctx env e) in
      Kvalue.force (Kvalue.V_thunk (register_read ctx sql))

and call_strict ctx fname args =
  match find_func ctx.program fname with
  | None -> Kvalue.error "unknown function %s" fname
  | Some f ->
      if List.length f.params <> List.length args then
        Kvalue.error "%s expects %d arguments, got %d" fname
          (List.length f.params) (List.length args);
      let env = Hashtbl.create 16 in
      List.iter2 (fun p v -> Hashtbl.replace env p v) f.params args;
      (try exec_strict ctx env f.body
       with Break_exn -> Kvalue.error "break outside of a loop in %s" fname);
      Kvalue.force
        (Option.value ~default:Kvalue.V_null (Hashtbl.find_opt env return_var))

and exec_strict ctx env stmt =
  tick ctx;
  match stmt.s with
  | Skip -> ()
  | Seq (a, b) ->
      exec_strict ctx env a;
      exec_strict ctx env b
  | Assign (L_var x, e) -> Hashtbl.replace env x (eval_strict ctx env e)
  | Assign (L_field (target, f), e) ->
      let addr = as_addr "field write" (eval_strict ctx env target) in
      Heap.set_field ctx.heap addr f (eval_strict ctx env e)
  | Assign (L_index (target, idx), e) ->
      let addr = as_addr "index write" (eval_strict ctx env target) in
      let i = as_num "index write" (eval_strict ctx env idx) in
      Heap.set_index ctx.heap addr i (eval_strict ctx env e)
  | If (c, a, b) ->
      if Kvalue.truthy (eval_strict ctx env c) then exec_strict ctx env a
      else exec_strict ctx env b
  | While body -> (
      try
        while true do
          exec_strict ctx env body
        done
      with Break_exn -> ())
  | Break -> raise Break_exn
  | Write e ->
      let sql = as_str "W()" (eval_strict ctx env e) in
      ignore (Store.register_sql ctx.store sql)
  | Print e ->
      let v = eval_strict ctx env e in
      ctx.output <- Heap.render ctx.heap v :: ctx.output
  | Expr_stmt e -> ignore (eval_strict ctx env e)

(* ====================================================================== *)
(* Lazy expression compilation.

   Evaluating an expression under extended lazy semantics walks the tree
   once, *now*, performing the parts that may not be deferred (query
   registration, impure / external / strict calls, object allocation) and
   suspending the rest.

   Two code generators share that walk:
   - [eval_nodes] (basic compilation, Sec. 3.2): every operation node
     allocates its own thunk — mirroring the per-temporary thunks that code
     simplification introduces;
   - [eval_coalesced] (thunk coalescing, Sec. 4.3): the eager parts run
     now, and a single thunk wraps the residual computation. *)
(* ====================================================================== *)

let rec eval_nodes ctx env expr : Kvalue.t =
  tick ctx;
  match expr with
  | Const c -> Kvalue.of_const c
  | Var x -> lookup env x
  | Field (e, f) ->
      (* Heap reads are performed when encountered (Sec. 3.6): the target is
         forced and the cell is read now; the cell's *content* may be a
         thunk and stays one. *)
      let addr = as_addr "field access" (eval_nodes ctx env e) in
      Heap.get_field ctx.heap addr f
  | Record fields ->
      (* Object allocation is eager; field values stay lazy. *)
      let vs = List.map (fun (f, e) -> (f, eval_nodes ctx env e)) fields in
      Kvalue.V_addr (Heap.alloc_record ctx.heap vs)
  | Array_lit es ->
      let vs = List.map (eval_nodes ctx env) es in
      Kvalue.V_addr (Heap.alloc_array ctx.heap vs)
  | Index (ea, ei) ->
      let a = as_addr "indexing" (eval_nodes ctx env ea) in
      let i = as_num "index" (eval_nodes ctx env ei) in
      Heap.get_index ctx.heap a i
  | Length e ->
      let a = as_addr "length" (eval_nodes ctx env e) in
      Kvalue.V_num (Heap.length ctx.heap a)
  | Binop (op, a, b) ->
      let va = eval_nodes ctx env a in
      let vb = eval_nodes ctx env b in
      Kvalue.V_thunk
        (Thunk.create (fun () ->
             Kvalue.binop op (Kvalue.force va) (Kvalue.force vb)))
  | Unop (op, e) ->
      let v = eval_nodes ctx env e in
      Kvalue.V_thunk (Thunk.create (fun () -> Kvalue.unop op (Kvalue.force v)))
  | Call (f, args) -> eval_call ctx env ~subeval:eval_nodes f args
  | Read e ->
      let sql = as_str "R()" (Kvalue.force (eval_nodes ctx env e)) in
      Kvalue.V_thunk (register_read ctx sql)

(* Calls share semantics between the two generators; [subeval] evaluates
   the argument expressions in the surrounding style. *)
and eval_call ctx env ~subeval f args =
  if fn_strict ctx f then
    (* External or SC-compiled: arguments forced, body strict. *)
    let vs = List.map (fun a -> Kvalue.force (subeval ctx env a)) args in
    call_strict ctx f vs
  else if fn_deferrable ctx f then begin
    (* Internal pure: defer the whole call. *)
    let vs = List.map (subeval ctx env) args in
    Kvalue.V_thunk (Thunk.create (fun () -> Kvalue.force (call_lazy ctx f vs)))
  end
  else
    (* Internal with side effects: run the body now (lazily); arguments
       stay thunks. *)
    let vs = List.map (subeval ctx env) args in
    call_lazy ctx f vs

and call_lazy ctx fname args =
  match find_func ctx.program fname with
  | None -> Kvalue.error "unknown function %s" fname
  | Some f ->
      if List.length f.params <> List.length args then
        Kvalue.error "%s expects %d arguments, got %d" fname
          (List.length f.params) (List.length args);
      let env = Hashtbl.create 16 in
      List.iter2 (fun p v -> Hashtbl.replace env p v) f.params args;
      (try exec_lazy ctx env f.body
       with Break_exn -> Kvalue.error "break outside of a loop in %s" fname);
      Option.value ~default:Kvalue.V_null (Hashtbl.find_opt env return_var)

(* Coalesced generation: returns a closure for the residual computation;
   eager parts (registration, strict/impure calls, allocation) already ran
   when the closure is returned. *)
and comp ctx env expr : unit -> Kvalue.t =
  tick ctx;
  match expr with
  | Const c ->
      let v = Kvalue.of_const c in
      fun () -> v
  | Var x ->
      let v = lookup env x in
      fun () -> v
  | Field (e, f) ->
      (* Heap reads happen now (see [eval_nodes]); the content may stay a
         thunk. *)
      let v = Heap.get_field ctx.heap (as_addr "field access" ((comp ctx env e) ())) f in
      fun () -> v
  | Record fields ->
      let vs =
        List.map
          (fun (f, e) ->
            (* Field values become individual thunks so they can live in the
               heap; allocation itself is eager. *)
            (f, eval_coalesced ctx env e))
          fields
      in
      let v = Kvalue.V_addr (Heap.alloc_record ctx.heap vs) in
      fun () -> v
  | Array_lit es ->
      let vs = List.map (eval_coalesced ctx env) es in
      let v = Kvalue.V_addr (Heap.alloc_array ctx.heap vs) in
      fun () -> v
  | Index (ea, ei) ->
      let a = as_addr "indexing" ((comp ctx env ea) ()) in
      let i = as_num "index" ((comp ctx env ei) ()) in
      let v = Heap.get_index ctx.heap a i in
      fun () -> v
  | Length e ->
      let v = Kvalue.V_num (Heap.length ctx.heap (as_addr "length" ((comp ctx env e) ()))) in
      fun () -> v
  | Binop (op, a, b) ->
      let ca = comp ctx env a in
      let cb = comp ctx env b in
      fun () -> Kvalue.binop op (Kvalue.force (ca ())) (Kvalue.force (cb ()))
  | Unop (op, e) ->
      let c = comp ctx env e in
      fun () -> Kvalue.unop op (Kvalue.force (c ()))
  | Call (f, args) ->
      let v = eval_call ctx env ~subeval:eval_coalesced f args in
      fun () -> v
  | Read e ->
      let sql = as_str "R()" ((comp ctx env e) ()) in
      let t = register_read ctx sql in
      fun () -> Kvalue.V_thunk t

(* One thunk for the whole expression (or none for trivial ones). *)
and eval_coalesced ctx env expr : Kvalue.t =
  match expr with
  | Const c -> Kvalue.of_const c
  | Var x -> lookup env x
  | _ ->
      let cl = comp ctx env expr in
      Kvalue.V_thunk (Thunk.create (fun () -> Kvalue.force (cl ())))

and eval_lazy ctx env expr =
  if ctx.opts.tc then eval_coalesced ctx env expr else eval_nodes ctx env expr

(* Strict evaluation of an expression in lazy code, for positions the
   semantics cannot defer (branch conditions, query strings, heap-write
   targets): evaluate with the lazy generator, then force. *)
and eval_forced ctx env expr = Kvalue.force (eval_lazy ctx env expr)

(* ====================================================================== *)
(* Lazy statement execution *)
(* ====================================================================== *)

(* Defer a whole statement (branch deferral / deferred loop): snapshot the
   environment, allocate one block thunk that runs the statement strictly
   over the snapshot when forced, and rebind every variable the statement
   assigns to a projection thunk. *)
and defer_block ctx env stmt =
  let snapshot = Hashtbl.copy env in
  let block =
    Thunk.create (fun () ->
        (try exec_strict ctx snapshot stmt
         with Break_exn ->
           Kvalue.error "break escaped a deferred block");
        Kvalue.V_null)
  in
  (* Only variables that can still be observed need projection thunks: ones
     already bound (the block may rebind them) or read somewhere in the
     enclosing body.  A variable that is neither — e.g. one thunk
     coalescing already dropped as dead — gets no projection; projecting it
     would fail when the not-taken branch leaves it undefined in the
     snapshot. *)
  List.iter
    (fun x ->
      if
        Hashtbl.mem env x
        || Analysis.used_in_enclosing_body ctx.analysis stmt.sid x
      then
        Hashtbl.replace env x
          (Kvalue.V_thunk
             (Thunk.create (fun () ->
                  ignore (Thunk.force block);
                  Kvalue.force (lookup snapshot x))))
      else Hashtbl.remove env x)
    (Analysis.stmt_var_defs stmt)

and exec_group ctx env (group : Analysis.group) stmts =
  (* Coalesced thunk block (Sec. 4.3): one thunk for the run of statements,
     plus one projection thunk per output variable. *)
  let snapshot = Hashtbl.copy env in
  let block =
    Thunk.create (fun () ->
        List.iter (fun s -> exec_strict ctx snapshot s) stmts;
        Kvalue.V_null)
  in
  (* Output variables escape through projection thunks. *)
  List.iter
    (fun x ->
      Hashtbl.replace env x
        (Kvalue.V_thunk
           (Thunk.create (fun () ->
                ignore (Thunk.force block);
                Kvalue.force (lookup snapshot x)))))
    group.outputs;
  (* Non-output definitions are dead after the group (that is what the
     liveness-style analysis established): no thunk is allocated for them —
     the paper's optimization — and their stale bindings are dropped so a
     wrong analysis fails loudly instead of yielding stale values. *)
  List.iter
    (fun x ->
      if not (List.mem x group.outputs) then Hashtbl.remove env x)
    (Analysis.stmts_var_defs stmts)

and exec_lazy ctx env stmt =
  tick ctx;
  match stmt.s with
  | Skip -> ()
  | Seq _ ->
      let chain = flatten stmt in
      exec_chain ctx env chain
  | Assign (L_var x, e) -> Hashtbl.replace env x (eval_lazy ctx env e)
  | Assign (L_field (target, f), e) ->
      (* The write target is forced; the written value stays lazy. *)
      let addr = as_addr "field write" (eval_forced ctx env target) in
      Heap.set_field ctx.heap addr f (eval_lazy ctx env e)
  | Assign (L_index (target, idx), e) ->
      let addr = as_addr "index write" (eval_forced ctx env target) in
      let i = as_num "index write" (eval_forced ctx env idx) in
      Heap.set_index ctx.heap addr i (eval_lazy ctx env e)
  | If (c, a, b) ->
      if ctx.opts.bd && Analysis.deferrable ctx.analysis stmt then
        defer_block ctx env stmt
      else if Kvalue.truthy (eval_forced ctx env c) then exec_lazy ctx env a
      else exec_lazy ctx env b
  | While _ when ctx.opts.bd && Analysis.deferrable ctx.analysis stmt ->
      defer_block ctx env stmt
  | While body -> (
      try
        while true do
          exec_lazy ctx env body
        done
      with Break_exn -> ())
  | Break -> raise Break_exn
  | Write e ->
      let sql = as_str "W()" (eval_forced ctx env e) in
      ignore (Store.register_sql ctx.store sql)
  | Print e ->
      let v = eval_lazy ctx env e in
      ctx.output <- Heap.render ctx.heap v :: ctx.output
  | Expr_stmt e ->
      (* Eager parts (calls, registration) run during evaluation; the pure
         residual is discarded unexecuted. *)
      ignore (eval_lazy ctx env e)

and exec_chain ctx env chain =
  match chain with
  | [] -> ()
  | stmt :: rest -> (
      match
        if ctx.opts.tc then Analysis.group_of_leader ctx.analysis stmt.sid
        else None
      with
      | Some group ->
          let n = List.length group.members in
          let members, rest' =
            let rec split i acc = function
              | s :: tl when i < n -> split (i + 1) (s :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            split 0 [] (stmt :: rest)
          in
          exec_group ctx env group members;
          exec_chain ctx env rest'
      | None ->
          exec_lazy ctx env stmt;
          exec_chain ctx env rest)

let run ?(fuel = 1_000_000) ?(opts = all_opts) program store =
  let analysis = Analysis.analyze program in
  let ctx =
    {
      program;
      store;
      heap = Heap.create ();
      analysis;
      opts;
      output = [];
      fuel;
    }
  in
  let env = Hashtbl.create 32 in
  (try
     if opts.sc && not (Analysis.main_persistent analysis) then
       exec_strict ctx env program.main
     else exec_lazy ctx env program.main
   with Break_exn -> Kvalue.error "break outside of a loop in main");
  { env; heap = ctx.heap; output = List.rev ctx.output }
