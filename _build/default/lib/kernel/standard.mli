(** The standard (strict) evaluator for the kernel language — the paper's
    baseline semantics of Sec. 3.8.

    Every [R(e)] executes immediately through the connection (one round trip
    per query, like the original applications), and every statement runs to
    completion before the next. *)

type result = {
  env : (string, Kvalue.t) Hashtbl.t;  (** main's final environment *)
  heap : Heap.t;
  output : string list;  (** values printed, in order *)
}

exception Fuel_exhausted

val run :
  ?fuel:int -> Ast.program -> Sloth_driver.Connection.t -> result
(** Execute a program.  [fuel] bounds the number of statement steps
    (default 1_000_000) and guards against non-terminating loops.  Raises
    {!Kvalue.Runtime_error} on dynamic type errors,
    [Sloth_driver.Connection.Server_error] on SQL failures, and
    {!Fuel_exhausted}. *)
