(** The extended-lazy evaluator (paper Sec. 3.8 and appendix), with the
    three compiler optimizations of Sec. 4 as switches.

    Statement evaluation defers computation into thunks; queries register
    eagerly with the query store and are fetched in batches when any
    dependent thunk is forced.  Following the formal rules:

    - branch conditions are forced when an [If] is met — unless branch
      deferral ([bd]) applies and the whole branch statement is deferrable;
    - heap-write targets are forced, the written value stays a thunk;
    - [W(e)] is never deferred and flushes pending reads in the same round
      trip;
    - [Print] (output) forces everything it renders;
    - calls to internal pure functions are deferred; calls to impure
      internal functions run now with thunk arguments; calls to external
      functions force their arguments and run strictly;
    - with selective compilation ([sc]), calls to non-persistent functions
      run strictly (no thunks inside);
    - with thunk coalescing ([tc]), one thunk per statement / coalescing
      group is allocated instead of one per operation node. *)

type opts = { sc : bool; tc : bool; bd : bool }

val no_opts : opts
val all_opts : opts

type result = {
  env : (string, Kvalue.t) Hashtbl.t;
  heap : Heap.t;
  output : string list;
}

exception Fuel_exhausted

val run :
  ?fuel:int ->
  ?opts:opts ->
  Ast.program ->
  Sloth_core.Query_store.t ->
  result
(** Unforced thunks may remain in [env]/[heap]; callers interested in final
    state should [Heap.deep_force] them (the soundness tests do). *)
