(** The kernel language of the paper (Fig. 4), extended with the constructs
    the formalization assumes around it: functions (with the [@] return
    variable convention), arrays, records, and an observable [Print]
    statement standing for "statements that produce output".

    Loops are the paper's [while(True)] form; [Break] is the desugared
    control-flow marker the paper encodes with boolean flags (Sec. 3.8,
    "unstructured control flow ... translated into boolean variable
    assignments" — we keep it first-class to make programs executable, and
    the analyses treat it as control flow).

    Every statement carries a unique id ([sid]) so the compiler passes can
    attach analysis results without rebuilding the tree. *)

type binop =
  | Add  (** numeric addition; string concatenation when either side is a
             string (the formalization's query strings are built this way) *)
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Eq
  | Lt
  | Gt

type unop = Not | Neg

type const = C_num of int | C_str of string | C_bool of bool | C_null

type expr =
  | Const of const
  | Var of string
  | Field of expr * string  (** e.f *)
  | Record of (string * expr) list  (** allocation: {fi = ei} *)
  | Index of expr * expr  (** ea[ei] *)
  | Array_lit of expr list  (** array allocation *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** f(e...) *)
  | Read of expr  (** R(e): a read query; e evaluates to a SQL string *)
  | Length of expr  (** array length — needed to loop over query results *)

type lvalue =
  | L_var of string
  | L_field of expr * string
  | L_index of expr * expr

type stmt = { sid : int; s : snode }

and snode =
  | Skip
  | Assign of lvalue * expr
  | If of expr * stmt * stmt
  | While of stmt  (** while(True) do s; exited by Break *)
  | Break
  | Write of expr  (** W(e): a mutating query; e evaluates to a SQL string *)
  | Print of expr  (** externally visible output; forces its argument *)
  | Seq of stmt * stmt
  | Expr_stmt of expr  (** evaluate for effect (e.g. a call) *)

type func = {
  fname : string;
  params : string list;
  body : stmt;
  external_fn : bool;
      (** true = treated as library code the compiler cannot see: calls are
          never deferred and arguments are forced (Sec. 3.4) *)
}

type program = { funcs : func list; main : stmt }

(** The return-value variable of the paper's convention. *)
let return_var = "@"

let find_func program name =
  List.find_opt (fun f -> String.equal f.fname name) program.funcs

(* --- traversal helpers used by the analyses ---------------------------- *)

let rec iter_stmts f stmt =
  f stmt;
  match stmt.s with
  | Seq (a, b) ->
      iter_stmts f a;
      iter_stmts f b
  | If (_, a, b) ->
      iter_stmts f a;
      iter_stmts f b
  | While body -> iter_stmts f body
  | Skip | Assign _ | Break | Write _ | Print _ | Expr_stmt _ -> ()

let rec iter_exprs_of_expr f expr =
  f expr;
  match expr with
  | Const _ | Var _ -> ()
  | Field (e, _) | Unop (_, e) | Read e | Length e -> iter_exprs_of_expr f e
  | Record fields -> List.iter (fun (_, e) -> iter_exprs_of_expr f e) fields
  | Array_lit es | Call (_, es) -> List.iter (iter_exprs_of_expr f) es
  | Index (a, b) | Binop (_, a, b) ->
      iter_exprs_of_expr f a;
      iter_exprs_of_expr f b

let exprs_of_stmt stmt =
  match stmt.s with
  | Skip | Break -> []
  | Assign (L_var _, e) | Write e | Print e | Expr_stmt e -> [ e ]
  | Assign (L_field (target, _), e) -> [ target; e ]
  | Assign (L_index (target, idx), e) -> [ target; idx; e ]
  | If (c, _, _) -> [ c ]
  | While _ | Seq _ -> []

let iter_exprs f stmt =
  iter_stmts
    (fun s -> List.iter (iter_exprs_of_expr f) (exprs_of_stmt s))
    stmt

(** Statements of a [Seq] chain in execution order. *)
let rec flatten stmt =
  match stmt.s with Seq (a, b) -> flatten a @ flatten b | _ -> [ stmt ]

let count_stmts stmt =
  let n = ref 0 in
  iter_stmts (fun _ -> incr n) stmt;
  !n

let rec expr_size = function
  | Const _ | Var _ -> 1
  | Field (e, _) | Unop (_, e) | Read e | Length e -> 1 + expr_size e
  | Record fields ->
      1 + List.fold_left (fun acc (_, e) -> acc + expr_size e) 0 fields
  | Array_lit es | Call (_, es) ->
      1 + List.fold_left (fun acc e -> acc + expr_size e) 0 es
  | Index (a, b) | Binop (_, a, b) -> 1 + expr_size a + expr_size b
