(** Static analyses backing the Sloth compiler's optimizations.

    - {b Persistence} (Sec. 4.1, selective compilation): an
      inter-procedural, flow-insensitive fixpoint labelling every function
      that may touch the database.  Non-persistent functions are compiled
      strictly (no thunks).
    - {b Purity} (Sec. 3.4): a function is pure if it makes no externally
      visible state change — no [W], no [Print], no heap writes, and calls
      only pure internal functions.  Pure internal calls may be deferred.
    - {b Deferrable statements} (Sec. 4.2, branch deferral): a statement is
      deferrable if executing it can be postponed wholesale — no queries, no
      output, no heap writes, no calls to impure/external/persistent
      functions, and any [Break] stays inside a loop contained in the
      statement.
    - {b Coalescing groups} (Sec. 4.3, thunk coalescing): maximal runs of
      consecutive deferrable variable assignments inside each statement
      sequence, with their output variables (the assigned variables still
      referenced outside the group — a flow-insensitive safe approximation
      of the paper's liveness analysis). *)

type t

type group = {
  leader : int;  (** sid of the first statement of the group *)
  members : int list;  (** sids in execution order, including the leader *)
  outputs : string list;  (** variables that must escape as thunks *)
}

val analyze : Ast.program -> t

val persistent : t -> string -> bool
(** Is the named function persistent (may issue queries)?  Unknown names
    are treated as persistent (conservative). *)

val pure : t -> string -> bool

val main_persistent : t -> bool
(** Whether the main body itself touches the database. *)

val deferrable : t -> Ast.stmt -> bool

val group_of_leader : t -> int -> group option
(** [Some g] iff the sid is the leader of a coalescing group (of ≥ 2
    statements). *)

val in_group : t -> int -> bool
(** Whether the sid belongs to some group (leader or member). *)

val persistent_count : t -> int * int
(** [(persistent, non_persistent)] over the program's functions (the Fig. 11
    table). *)

val stmt_var_defs : Ast.stmt -> string list
(** All variables assigned anywhere in the statement subtree (sorted). *)

val used_in_enclosing_body : t -> int -> string -> bool
(** [used_in_enclosing_body t sid x]: does any statement node of the body
    containing statement [sid] read variable [x]?  Conservatively true for
    unknown sids. *)

val stmts_var_defs : Ast.stmt list -> string list
