open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "&&"
  | Or -> "||"
  | Eq -> "=="
  | Lt -> "<"
  | Gt -> ">"

let const_str = function
  | C_num n -> string_of_int n
  | C_str s -> Printf.sprintf "%S" s
  | C_bool b -> string_of_bool b
  | C_null -> "null"

let rec expr_to_string = function
  | Const c -> const_str c
  | Var x -> x
  | Field (e, f) -> Printf.sprintf "%s.%s" (expr_to_string e) f
  | Record fields ->
      let fs =
        List.map (fun (f, e) -> f ^ " = " ^ expr_to_string e) fields
      in
      "{" ^ String.concat ", " fs ^ "}"
  | Index (a, i) ->
      Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Array_lit es ->
      "[" ^ String.concat ", " (List.map expr_to_string es) ^ "]"
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op)
        (expr_to_string b)
  | Unop (Not, e) -> Printf.sprintf "(!%s)" (expr_to_string e)
  | Unop (Neg, e) -> Printf.sprintf "(-%s)" (expr_to_string e)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", " (List.map expr_to_string args))
  | Read e -> Printf.sprintf "R(%s)" (expr_to_string e)
  | Length e -> Printf.sprintf "len(%s)" (expr_to_string e)

let lvalue_to_string = function
  | L_var x -> x
  | L_field (e, f) -> Printf.sprintf "%s.%s" (expr_to_string e) f
  | L_index (a, i) ->
      Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)

let rec stmt_to_string ?(indent = 0) stmt =
  let pad = String.make indent ' ' in
  match stmt.s with
  | Skip -> pad ^ "skip;"
  | Assign (lv, e) ->
      Printf.sprintf "%s%s = %s;" pad (lvalue_to_string lv) (expr_to_string e)
  | If (c, a, b) ->
      Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad
        (expr_to_string c)
        (stmt_to_string ~indent:(indent + 2) a)
        pad
        (stmt_to_string ~indent:(indent + 2) b)
        pad
  | While body ->
      Printf.sprintf "%swhile (true) {\n%s\n%s}" pad
        (stmt_to_string ~indent:(indent + 2) body)
        pad
  | Break -> pad ^ "break;"
  | Write e -> Printf.sprintf "%sW(%s);" pad (expr_to_string e)
  | Print e -> Printf.sprintf "%sprint(%s);" pad (expr_to_string e)
  | Seq (a, b) ->
      stmt_to_string ~indent a ^ "\n" ^ stmt_to_string ~indent b
  | Expr_stmt e -> Printf.sprintf "%s%s;" pad (expr_to_string e)

let program_to_string p =
  let funcs =
    List.map
      (fun f ->
        Printf.sprintf "%sfunction %s(%s) {\n%s\n}"
          (if f.external_fn then "external " else "")
          f.fname
          (String.concat ", " f.params)
          (stmt_to_string ~indent:2 f.body))
      p.funcs
  in
  String.concat "\n\n" (funcs @ [ "main {\n" ^ stmt_to_string ~indent:2 p.main ^ "\n}" ])
