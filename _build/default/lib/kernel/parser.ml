exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- lexer --------------------------------------------------------------- *)

type token =
  | NUM of int
  | STR of string
  | ID of string  (* identifiers, including '@' *)
  | PUNCT of string  (* operators and delimiters *)
  | TEOF

let keywords = [ "function"; "external"; "main"; "if"; "else"; "while";
                 "break"; "skip"; "print"; "true"; "false"; "null"; "len" ]

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '@'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      toks := NUM (int_of_string (String.sub src start (!i - start))) :: !toks
    end
    else if is_id_start c then begin
      let start = !i in
      incr i;
      while !i < n && is_id_char src.[!i] do incr i done;
      toks := ID (String.sub src start (!i - start)) :: !toks
    end
    else if c = '"' then begin
      (* OCaml-style escaped string, as Pretty prints with %S. *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf src.[!i];
          Buffer.add_char buf src.[!i + 1];
          i := !i + 2
        end
        else if src.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then error "unterminated string literal";
      let s =
        try Scanf.unescaped (Buffer.contents buf)
        with Scanf.Scan_failure _ -> error "bad escape in string literal"
      in
      toks := STR s :: !toks
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "&&" | "||" | "==" ->
          toks := PUNCT two :: !toks;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '{' | '}' | '(' | ')' | '[' | ']' | ',' | ';' | '.' | '=' | '<'
          | '>' | '+' | '-' | '*' | '/' | '%' | '!' ->
              toks := PUNCT (String.make 1 c) :: !toks
          | _ -> error "unexpected character %C" c)
    end
  done;
  List.rev (TEOF :: !toks)

(* --- parser state -------------------------------------------------------- *)

type state = { mutable toks : token list; b : Builder.t }

let peek st = match st.toks with [] -> TEOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let next st =
  let t = peek st in
  advance st;
  t

let pp_token ppf = function
  | NUM n -> Format.fprintf ppf "%d" n
  | STR s -> Format.fprintf ppf "%S" s
  | ID s -> Format.pp_print_string ppf s
  | PUNCT s -> Format.pp_print_string ppf s
  | TEOF -> Format.pp_print_string ppf "<eof>"

let expect st tok =
  let t = next st in
  if t <> tok then error "expected %a, found %a" pp_token tok pp_token t

let expect_punct st s = expect st (PUNCT s)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match next st with
  | ID s when not (List.mem s keywords) -> s
  | t -> error "expected identifier, found %a" pp_token t

(* --- expressions ---------------------------------------------------------- *)

open Ast

let rec expr st = or_expr st

and or_expr st =
  let lhs = ref (and_expr st) in
  while accept st (PUNCT "||") do
    lhs := Binop (Or, !lhs, and_expr st)
  done;
  !lhs

and and_expr st =
  let lhs = ref (not_expr st) in
  while accept st (PUNCT "&&") do
    lhs := Binop (And, !lhs, not_expr st)
  done;
  !lhs

and not_expr st =
  if accept st (PUNCT "!") then Unop (Not, not_expr st) else cmp_expr st

and cmp_expr st =
  let lhs = add_expr st in
  match peek st with
  | PUNCT "==" ->
      advance st;
      Binop (Eq, lhs, add_expr st)
  | PUNCT "<" ->
      advance st;
      Binop (Lt, lhs, add_expr st)
  | PUNCT ">" ->
      advance st;
      Binop (Gt, lhs, add_expr st)
  | _ -> lhs

and add_expr st =
  let lhs = ref (mul_expr st) in
  let continue = ref true in
  while !continue do
    if accept st (PUNCT "+") then lhs := Binop (Add, !lhs, mul_expr st)
    else if accept st (PUNCT "-") then lhs := Binop (Sub, !lhs, mul_expr st)
    else continue := false
  done;
  !lhs

and mul_expr st =
  let lhs = ref (unary_expr st) in
  let continue = ref true in
  while !continue do
    if accept st (PUNCT "*") then lhs := Binop (Mul, !lhs, unary_expr st)
    else if accept st (PUNCT "/") then lhs := Binop (Div, !lhs, unary_expr st)
    else if accept st (PUNCT "%") then lhs := Binop (Mod, !lhs, unary_expr st)
    else continue := false
  done;
  !lhs

and unary_expr st =
  if accept st (PUNCT "-") then Unop (Neg, unary_expr st)
  else postfix_expr st

and postfix_expr st =
  let e = ref (primary_expr st) in
  let continue = ref true in
  while !continue do
    if accept st (PUNCT ".") then e := Field (!e, ident st)
    else if accept st (PUNCT "[") then begin
      let idx = expr st in
      expect_punct st "]";
      e := Index (!e, idx)
    end
    else continue := false
  done;
  !e

and primary_expr st =
  match next st with
  | NUM n -> Const (C_num n)
  | STR s -> Const (C_str s)
  | ID "true" -> Const (C_bool true)
  | ID "false" -> Const (C_bool false)
  | ID "null" -> Const C_null
  | ID "len" ->
      expect_punct st "(";
      let e = expr st in
      expect_punct st ")";
      Length e
  | ID "R" ->
      expect_punct st "(";
      let e = expr st in
      expect_punct st ")";
      Read e
  | ID name when not (List.mem name keywords) ->
      if peek st = PUNCT "(" then begin
        advance st;
        let args = ref [] in
        if peek st <> PUNCT ")" then begin
          args := [ expr st ];
          while accept st (PUNCT ",") do
            args := expr st :: !args
          done
        end;
        expect_punct st ")";
        Call (name, List.rev !args)
      end
      else Var name
  | PUNCT "(" ->
      let e = expr st in
      expect_punct st ")";
      e
  | PUNCT "{" ->
      (* record literal: {f = e, ...} *)
      let field () =
        let f = ident st in
        expect_punct st "=";
        (f, expr st)
      in
      let fields = ref [ field () ] in
      while accept st (PUNCT ",") do
        fields := field () :: !fields
      done;
      expect_punct st "}";
      Record (List.rev !fields)
  | PUNCT "[" ->
      let items = ref [] in
      if peek st <> PUNCT "]" then begin
        items := [ expr st ];
        while accept st (PUNCT ",") do
          items := expr st :: !items
        done
      end;
      expect_punct st "]";
      Array_lit (List.rev !items)
  | t -> error "unexpected token %a in expression" pp_token t

(* --- statements ----------------------------------------------------------- *)

let rec stmt st =
  match peek st with
  | ID "skip" ->
      advance st;
      expect_punct st ";";
      Builder.skip st.b
  | ID "break" ->
      advance st;
      expect_punct st ";";
      Builder.break st.b
  | ID "print" ->
      advance st;
      expect_punct st "(";
      let e = expr st in
      expect_punct st ")";
      expect_punct st ";";
      Builder.print st.b e
  | ID "W" ->
      advance st;
      expect_punct st "(";
      let e = expr st in
      expect_punct st ")";
      expect_punct st ";";
      Builder.write st.b e
  | ID "if" ->
      advance st;
      expect_punct st "(";
      let c = expr st in
      expect_punct st ")";
      let then_ = block st in
      expect st (ID "else");
      let else_ = block st in
      Builder.if_ st.b c then_ else_
  | ID "while" ->
      advance st;
      expect_punct st "(";
      expect st (ID "true");
      expect_punct st ")";
      Builder.while_ st.b (block st)
  | _ ->
      (* assignment or expression statement: parse an expression; if '='
         follows, the expression must be an lvalue. *)
      let e = expr st in
      if accept st (PUNCT "=") then begin
        let rhs = expr st in
        expect_punct st ";";
        match e with
        | Var x -> Builder.assign st.b x rhs
        | Field (target, f) -> Builder.set_field st.b target f rhs
        | Index (target, i) -> Builder.set_index st.b target i rhs
        | _ -> error "left-hand side of assignment is not an lvalue"
      end
      else begin
        expect_punct st ";";
        Builder.expr_stmt st.b e
      end

and block st =
  expect_punct st "{";
  let stmts = ref [] in
  while peek st <> PUNCT "}" do
    stmts := stmt st :: !stmts
  done;
  expect_punct st "}";
  Builder.seq st.b (List.rev !stmts)

let func st =
  let external_fn = accept st (ID "external") in
  expect st (ID "function");
  let fname = ident st in
  expect_punct st "(";
  let params = ref [] in
  if peek st <> PUNCT ")" then begin
    params := [ ident st ];
    while accept st (PUNCT ",") do
      params := ident st :: !params
    done
  end;
  expect_punct st ")";
  let body = block st in
  Builder.func ~external_fn fname (List.rev !params) body

let parse src =
  let st = { toks = tokenize src; b = Builder.create () } in
  let funcs = ref [] in
  while peek st = ID "function" || peek st = ID "external" do
    funcs := func st :: !funcs
  done;
  expect st (ID "main");
  let main = block st in
  (match peek st with
  | TEOF -> ()
  | t -> error "trailing input after main block: %a" pp_token t);
  Builder.program (List.rev !funcs) main

let parse_expr src =
  let st = { toks = tokenize src; b = Builder.create () } in
  let e = expr st in
  (match peek st with
  | TEOF -> ()
  | t -> error "trailing input after expression: %a" pp_token t);
  e
