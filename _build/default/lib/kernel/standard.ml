open Ast

type result = {
  env : (string, Kvalue.t) Hashtbl.t;
  heap : Heap.t;
  output : string list;
}

exception Fuel_exhausted
exception Break_exn

type ctx = {
  program : program;
  conn : Sloth_driver.Connection.t;
  heap : Heap.t;
  mutable output : string list;  (* reversed *)
  mutable fuel : int;
}

(* Every interpretation step costs a sliver of application CPU, so lazy
   evaluation's extra work (thunk bodies re-walked at force time) shows up
   in the App category alongside the per-thunk charges. *)
let tick_cost_ms = ref 0.002

let tick ctx =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel <= 0 then raise Fuel_exhausted;
  Sloth_core.Runtime.charge_app !tick_cost_ms

let deserialize ctx rs =
  let columns = Sloth_storage.Result_set.columns rs in
  let rows =
    List.map
      (fun row ->
        let fields =
          List.mapi
            (fun i c -> (c, Kvalue.of_sql_value row.(i)))
            columns
        in
        Kvalue.V_addr (Heap.alloc_record ctx.heap fields))
      (Sloth_storage.Result_set.rows rs)
  in
  Kvalue.V_addr (Heap.alloc_array ctx.heap rows)

let run_query ctx sql =
  let outcome = Sloth_driver.Connection.execute_sql ctx.conn sql in
  outcome.rs

let as_addr what v =
  match Kvalue.force v with
  | Kvalue.V_addr a -> a
  | v -> Kvalue.error "%s expects a heap object, got %s" what
           (Kvalue.to_display_string v)

let as_num what v =
  match Kvalue.force v with
  | Kvalue.V_num n -> n
  | v -> Kvalue.error "%s expects a number, got %s" what
           (Kvalue.to_display_string v)

let as_str what v =
  match Kvalue.force v with
  | Kvalue.V_str s -> s
  | v -> Kvalue.error "%s expects a string, got %s" what
           (Kvalue.to_display_string v)

let rec eval ctx env expr =
  tick ctx;
  match expr with
  | Const c -> Kvalue.of_const c
  | Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> Kvalue.error "unbound variable %s" x)
  | Field (e, f) -> Heap.get_field ctx.heap (as_addr "field access" (eval ctx env e)) f
  | Record fields ->
      let vs = List.map (fun (f, e) -> (f, eval ctx env e)) fields in
      Kvalue.V_addr (Heap.alloc_record ctx.heap vs)
  | Array_lit es ->
      let vs = List.map (eval ctx env) es in
      Kvalue.V_addr (Heap.alloc_array ctx.heap vs)
  | Index (ea, ei) ->
      let a = as_addr "indexing" (eval ctx env ea) in
      let i = as_num "index" (eval ctx env ei) in
      Heap.get_index ctx.heap a i
  | Length e -> Kvalue.V_num (Heap.length ctx.heap (as_addr "length" (eval ctx env e)))
  | Binop (op, a, b) ->
      let va = eval ctx env a in
      let vb = eval ctx env b in
      Kvalue.binop op va vb
  | Unop (op, e) -> Kvalue.unop op (eval ctx env e)
  | Call (f, args) ->
      let vs = List.map (eval ctx env) args in
      call ctx f vs
  | Read e ->
      let sql = as_str "R()" (eval ctx env e) in
      deserialize ctx (run_query ctx sql)

and call ctx fname args =
  match find_func ctx.program fname with
  | None -> Kvalue.error "unknown function %s" fname
  | Some f ->
      if List.length f.params <> List.length args then
        Kvalue.error "%s expects %d arguments, got %d" fname
          (List.length f.params) (List.length args);
      let env = Hashtbl.create 16 in
      List.iter2 (fun p v -> Hashtbl.replace env p v) f.params args;
      (try exec ctx env f.body
       with Break_exn -> Kvalue.error "break outside of a loop in %s" fname);
      Option.value ~default:Kvalue.V_null (Hashtbl.find_opt env return_var)

and exec ctx env stmt =
  tick ctx;
  match stmt.s with
  | Skip -> ()
  | Seq (a, b) ->
      exec ctx env a;
      exec ctx env b
  | Assign (L_var x, e) -> Hashtbl.replace env x (eval ctx env e)
  | Assign (L_field (target, f), e) ->
      let addr = as_addr "field write" (eval ctx env target) in
      let v = eval ctx env e in
      Heap.set_field ctx.heap addr f v
  | Assign (L_index (target, idx), e) ->
      let addr = as_addr "index write" (eval ctx env target) in
      let i = as_num "index write" (eval ctx env idx) in
      let v = eval ctx env e in
      Heap.set_index ctx.heap addr i v
  | If (c, a, b) ->
      if Kvalue.truthy (eval ctx env c) then exec ctx env a else exec ctx env b
  | While body -> (
      try
        while true do
          exec ctx env body
        done
      with Break_exn -> ())
  | Break -> raise Break_exn
  | Write e ->
      let sql = as_str "W()" (eval ctx env e) in
      ignore (Sloth_driver.Connection.execute_sql ctx.conn sql)
  | Print e ->
      let v = eval ctx env e in
      ctx.output <- Heap.render ctx.heap v :: ctx.output
  | Expr_stmt e -> ignore (eval ctx env e)

let run ?(fuel = 1_000_000) program conn =
  let ctx = { program; conn; heap = Heap.create (); output = []; fuel } in
  let env = Hashtbl.create 32 in
  (try exec ctx env program.main
   with Break_exn -> Kvalue.error "break outside of a loop in main");
  { env; heap = ctx.heap; output = List.rev ctx.output }
