(** Fig. 12: effect of the compiler optimizations on kernel page suites. *)

val page_program :
  sections:int -> consumed:int -> loop_iters:int -> Sloth_kernel.Ast.program
(** A synthetic page: access check, [sections] model sections (query
    registration, temporary chains through helpers, a deferrable
    conditional, a render loop split off by heap writes into the model
    record), and a view printing only the first [consumed] sections. *)

val suite : string -> Sloth_kernel.Ast.program list
(** ["tracker-k"] (6 pages) or anything else for the larger medrec-k
    (8 pages). *)

val run_standard_suite : Sloth_kernel.Ast.program list -> float
(** Total virtual milliseconds under the standard evaluator. *)

val run_lazy_suite :
  Sloth_kernel.Ast.program list -> Sloth_kernel.Lazy_eval.opts -> float

val fig12 : unit -> unit
