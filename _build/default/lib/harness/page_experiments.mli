(** The page-load experiment family: Fig. 5 (itracker-shaped app CDFs),
    Fig. 6 (OpenMRS-shaped app CDFs), Fig. 8 (time breakdown), Fig. 9
    (network latency scaling) and the appendix per-benchmark tables.

    Runs are memoized per (application, RTT) so the figures that share data
    do not repeat work. *)

val runs :
  (module Sloth_workload.App_sig.S) -> rtt_ms:float -> Runner.page_run list

val fig5 : unit -> unit
(** Tracker CDFs: speedup, round-trip ratio, queries-issued ratio. *)

val fig6 : unit -> unit
(** Medrec CDFs: same three ratios. *)

val fig8 : unit -> unit
(** Aggregate time breakdown (network / app server / db), both apps. *)

val fig9 : unit -> unit
(** Speedup CDFs at RTT 0.5 / 1 / 10 ms, both apps. *)

val appendix : unit -> unit
(** Per-benchmark tables like the paper's appendix. *)
