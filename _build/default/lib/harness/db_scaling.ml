(** Fig. 10: page load time vs database size.

    Two entity-list pages, as in the paper: tracker's [list_projects] with
    a growing number of projects, and medrec's [encounter_display] with a
    growing number of observations (the skewed FK gives encounter 1 about
    an eighth of them). *)

module TS = Sloth_workload.Table_spec
module Page = Sloth_web.Page

let scaled_db (module A : Sloth_workload.App_sig.S) ~tables =
  let specs =
    List.map
      (fun (s : TS.t) ->
        match List.assoc_opt s.table tables with
        | Some rows -> { s with rows_at = (fun _ -> rows) }
        | None -> s)
      A.specs
  in
  let db = Sloth_storage.Database.create () in
  Sloth_workload.Datagen.populate ~scale:1 db specs;
  db

let sweep (module A : Sloth_workload.App_sig.S) ~page ~sizes =
  List.map
    (fun (label, tables) ->
      let db = scaled_db (module A) ~tables in
      let run = Runner.run_page ~db ~rtt_ms:0.5 (module A) page in
      (label, run))
    sizes

let print_sweep ~what results =
  Report.table
    ~header:
      [ what; "original ms"; "sloth ms"; "speedup"; "max batch" ]
    (List.map
       (fun (rows, (r : Runner.page_run)) ->
         [
           rows;
           Printf.sprintf "%.1f" r.original.Page.total_ms;
           Printf.sprintf "%.1f" r.sloth.Page.total_ms;
           Printf.sprintf "%.2fx" (Runner.speedup r);
           string_of_int r.sloth.Page.max_batch;
         ])
       results)

let fig10 () =
  Report.section "Fig 10: database scaling";
  Report.subsection "(a) tracker list_projects vs number of projects";
  print_sweep ~what:"projects"
    (sweep Sloth_workload.App_sig.tracker ~page:"list_projects"
       ~sizes:
         (List.map
            (fun n -> (string_of_int n, [ ("project", n) ]))
            [ 10; 50; 100; 250; 500; 1000 ]));
  Report.subsection
    "(b) medrec encounter_display vs number of observations";
  (* The whole dataset grows, as in the paper: more observations and a
     proportionally larger concept dictionary. *)
  print_sweep ~what:"observations"
    (sweep Sloth_workload.App_sig.medrec ~page:"encounter_display"
       ~sizes:
         (List.map
            (fun n -> (string_of_int n, [ ("obs", n); ("concept", n / 4) ]))
            [ 400; 800; 1600; 3200; 6400; 12800 ]))
