(** ASCII rendering of experiment results: headers, tables, CDF summaries
    and bar sketches, matching the rows/series the paper's figures show. *)

val section : string -> unit
(** A boxed heading on stdout. *)

val subsection : string -> unit

val table : header:string list -> string list list -> unit
(** Column-aligned table. *)

val cdf_summary : name:string -> float list -> unit
(** One line: min / p25 / median / p75 / max of a sample. *)

val cdf_series : name:string -> float list -> unit
(** The downsampled CDF itself, one point per line fraction. *)

val bar : label:string -> ?width:int -> float -> max:float -> unit
(** A labelled horizontal bar scaled to [max]. *)
