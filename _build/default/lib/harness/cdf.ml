let sorted xs = List.sort compare xs

let percentile xs p =
  match sorted xs with
  | [] -> invalid_arg "Cdf.percentile: empty sample"
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      if n = 1 then a.(0)
      else
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = min (n - 1) (lo + 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile xs 50.0

let mean = function
  | [] -> invalid_arg "Cdf.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function
  | [] -> invalid_arg "Cdf.minimum: empty sample"
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> invalid_arg "Cdf.maximum: empty sample"
  | x :: xs -> List.fold_left Float.max x xs

let cdf_points ?(points = 20) xs =
  let s = Array.of_list (sorted xs) in
  let n = Array.length s in
  if n = 0 then []
  else
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        let idx = min (n - 1) (int_of_float (Float.round (frac *. float_of_int n)) - 1) in
        (frac, s.(max 0 idx)))
