module Des = Sloth_net.Des
module Page = Sloth_web.Page

type profile = {
  cpu_ms : float;
  latency_ms : float;
  db_ms : float;
  trips : int;
  inflation_per_client : float;
      (** per-page CPU growth with population: context switches for both
          builds, plus thunk/GC pressure for the Sloth build — the paper's
          explanation of the post-peak decline *)
}

(* The share of app-server wall time actually spent on-CPU, and the CPU
   cost of putting a worker thread to sleep and waking it per round trip. *)
let cpu_fraction = 0.15
let per_trip_cpu_ms = 0.35

let profile_of_runs ~mode runs =
  let n = float_of_int (List.length runs) in
  let pick (r : Runner.page_run) =
    match mode with `Original -> r.original | `Sloth -> r.sloth
  in
  let avg f = List.fold_left (fun acc r -> acc +. f (pick r)) 0.0 runs /. n in
  let app = avg (fun m -> m.Page.app_ms) in
  let trips = avg (fun m -> float_of_int m.Page.round_trips) in
  {
    cpu_ms = (cpu_fraction *. app) +. (per_trip_cpu_ms *. trips);
    latency_ms = (1.0 -. cpu_fraction) *. app;
    db_ms = avg (fun m -> m.Page.db_ms);
    trips = int_of_float (Float.round trips);
    inflation_per_client =
      (match mode with `Original -> 0.0007 | `Sloth -> 0.0013);
  }

let think_time_ms = 200.0

let simulate ?(cores = 8) ?(rtt_ms = 0.5) ?inflation_per_client profile
    ~clients =
  let inflation_per_client =
    Option.value inflation_per_client ~default:profile.inflation_per_client
  in
  let sim = Des.create () in
  let cpu = Des.Resource.create sim ~servers:cores in
  let db = Des.Resource.create sim ~servers:12 in
  let warmup = 2_000.0 and window = 20_000.0 in
  let completed = ref 0 in
  let inflation = 1.0 +. (inflation_per_client *. float_of_int clients) in
  let cpu_slice =
    inflation *. profile.cpu_ms /. float_of_int (profile.trips + 1)
  in
  let latency_slice = profile.latency_ms /. float_of_int (profile.trips + 1) in
  let db_slice = profile.db_ms /. float_of_int (max 1 profile.trips) in
  let rec page_loop () =
    (* Alternate CPU/latency slices with round trips, then start over. *)
    let rec trip k i =
      if i >= profile.trips then k ()
      else
        Des.Resource.with_service cpu cpu_slice (fun () ->
            Des.delay sim latency_slice (fun () ->
                Des.delay sim rtt_ms (fun () ->
                    Des.Resource.with_service db db_slice (fun () ->
                        trip k (i + 1)))))
    in
    trip
      (fun () ->
        Des.Resource.with_service cpu cpu_slice (fun () ->
            Des.delay sim latency_slice (fun () ->
                let t = Des.now sim in
                if t >= warmup && t < warmup +. window then incr completed;
                Des.delay sim think_time_ms page_loop)))
      0
  in
  (* Stagger client start-up so identical clients do not run in lockstep. *)
  for c = 0 to clients - 1 do
    Des.at sim (float_of_int c *. 0.37) page_loop
  done;
  Des.run sim ~until:(warmup +. window);
  float_of_int !completed /. (window /. 1000.0)

let client_counts = [ 10; 25; 50; 75; 100; 150; 200; 300; 400; 500; 600 ]

let fig7 () =
  Report.section "Fig 7: throughput vs number of clients (medrec pages)";
  let runs =
    Page_experiments.runs Sloth_workload.App_sig.medrec ~rtt_ms:0.5
  in
  let original = profile_of_runs ~mode:`Original runs in
  let sloth = profile_of_runs ~mode:`Sloth runs in
  Printf.printf
    "  profiles: original cpu %.1f ms, wait %.1f ms, db %.1f ms, %d trips\n"
    original.cpu_ms original.latency_ms original.db_ms original.trips;
  Printf.printf
    "            sloth    cpu %.1f ms, wait %.1f ms, db %.1f ms, %d trips\n"
    sloth.cpu_ms sloth.latency_ms sloth.db_ms sloth.trips;
  let rows =
    List.map
      (fun clients ->
        let o = simulate original ~clients in
        let s = simulate sloth ~clients in
        (clients, o, s))
      client_counts
  in
  Report.table
    ~header:[ "clients"; "original (page/s)"; "sloth (page/s)" ]
    (List.map
       (fun (c, o, s) ->
         [ string_of_int c; Printf.sprintf "%.1f" o; Printf.sprintf "%.1f" s ])
       rows);
  let peak sel = List.fold_left (fun acc r -> Float.max acc (sel r)) 0.0 rows in
  let peak_o = peak (fun (_, o, _) -> o) in
  let peak_s = peak (fun (_, _, s) -> s) in
  Printf.printf "\n  peak throughput: original %.1f, sloth %.1f (%.2fx)\n"
    peak_o peak_s (peak_s /. peak_o)
