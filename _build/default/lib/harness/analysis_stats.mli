(** Fig. 11: the selective-compilation persistence split, over synthetic
    kernel corpora shaped like the paper's two codebases. *)

val corpus :
  name:string ->
  n_funcs:int ->
  direct_query_fraction:float ->
  avg_calls:float ->
  seed:int ->
  string * Sloth_kernel.Ast.program

val corpora : unit -> (string * Sloth_kernel.Ast.program) list
(** The two calibrated corpora (9713 and 2452 methods). *)

val fig11 : unit -> unit
