(** Fig. 7: closed-system throughput, original vs Sloth.

    A discrete-event simulation of the paper's setup: a fixed population of
    clients loads random pages back-to-back against an app server (worker
    pool + CPU cores) and a database server, over a fixed-latency link.
    Page demands come from the measured page-load profiles.  On-CPU time is
    a fraction of the app-server wall time (most of it is blocking), plus a
    per-round-trip thread-scheduling cost — which is exactly the overhead
    fewer round trips save, and why the Sloth server peaks higher.  Per-page
    CPU inflates gently with the client population (context switching /
    GC), producing the post-peak decline. *)

type profile = {
  cpu_ms : float;  (** on-CPU app-server time per page *)
  latency_ms : float;  (** non-CPU app residence (waits, rendering) *)
  db_ms : float;
  trips : int;
  inflation_per_client : float;
      (** per-page CPU growth with client population (higher for the Sloth
          build: thunk allocation raises GC pressure) *)
}

val profile_of_runs :
  mode:[ `Original | `Sloth ] -> Runner.page_run list -> profile

val simulate :
  ?cores:int ->
  ?rtt_ms:float ->
  ?inflation_per_client:float ->
  profile ->
  clients:int ->
  float
(** Pages per second completed in the measurement window.  Clients pause
    200 ms between page loads. *)

val fig7 : unit -> unit
