let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row c with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let print_row row =
    let cells =
      List.mapi
        (fun c cell ->
          let w = List.nth widths c in
          cell ^ String.make (w - String.length cell) ' ')
        row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let cdf_summary ~name xs =
  Printf.printf "  %-28s min %.2f  p25 %.2f  median %.2f  p75 %.2f  max %.2f\n"
    name (Cdf.minimum xs) (Cdf.percentile xs 25.0) (Cdf.median xs)
    (Cdf.percentile xs 75.0) (Cdf.maximum xs)

let cdf_series ~name xs =
  Printf.printf "  CDF %s:\n" name;
  List.iter
    (fun (frac, v) -> Printf.printf "    %3.0f%%  %.3f\n" (100.0 *. frac) v)
    (Cdf.cdf_points xs)

let bar ~label ?(width = 50) value ~max =
  let n =
    if max <= 0.0 then 0
    else int_of_float (Float.round (value /. max *. float_of_int width))
  in
  Printf.printf "  %-28s %s %.1f\n" label (String.make (Stdlib.max 0 n) '#') value
