(** Fig. 13: lazy-evaluation overhead on TPC-C and TPC-W.

    Each transaction/interaction consumes its results immediately, so the
    Sloth build gains nothing from batching and pays the thunk machinery —
    the paper measures 5–15 % slowdown.  Both builds run the same seeds on
    identical fresh databases; outputs are compared to guarantee the runs
    did the same work. *)

module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection
module Runtime = Sloth_core.Runtime

let txn_count = 40

let fresh_env populate =
  let db = Sloth_storage.Database.create () in
  populate db;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  (clock, Conn.create db link)

let run_pair ~populate ~programs =
  (* Standard build. *)
  let clock_s, conn = fresh_env populate in
  Runtime.set_clock (Some clock_s);
  let out_std =
    List.concat_map
      (fun prog -> (Sloth_kernel.Standard.run prog conn).output)
      programs
  in
  Runtime.set_clock None;
  (* Sloth build, fully optimized, on an identical database. *)
  let clock_l, conn = fresh_env populate in
  let store = Sloth_core.Query_store.create conn in
  Runtime.set_clock (Some clock_l);
  let out_lazy =
    List.concat_map
      (fun prog ->
        let r = Sloth_kernel.Lazy_eval.run prog store in
        Sloth_core.Query_store.flush store;
        r.output)
      programs
  in
  Runtime.set_clock None;
  if out_std <> out_lazy then
    failwith "overhead experiment: builds produced different output";
  (Vclock.total clock_s, Vclock.total clock_l)

let tpcc_rows () =
  List.map
    (fun (name, make) ->
      let programs = List.init txn_count (fun seed -> make ~seed:(seed + 1)) in
      let std, lzy =
        run_pair ~populate:(Sloth_workload.Tpcc.populate ~scale:1) ~programs
      in
      (name, std, lzy))
    Sloth_workload.Tpcc.transactions

let tpcw_rows () =
  List.map
    (fun (name, interactions) ->
      let programs =
        List.concat
          (List.init 6 (fun round ->
               List.mapi
                 (fun i make -> make ~seed:(1 + i + (round * 17)))
                 interactions))
      in
      let std, lzy =
        run_pair ~populate:(Sloth_workload.Tpcw.populate ~scale:1) ~programs
      in
      (name, std, lzy))
    Sloth_workload.Tpcw.mixes

let fig13 () =
  Report.section "Fig 13: lazy-evaluation overhead (TPC-C / TPC-W)";
  let render rows =
    Report.table
      ~header:[ "transaction type"; "original (ms)"; "sloth (ms)"; "overhead" ]
      (List.map
         (fun (name, std, lzy) ->
           [
             name;
             Printf.sprintf "%.1f" std;
             Printf.sprintf "%.1f" lzy;
             Printf.sprintf "%.1f%%" (100.0 *. ((lzy /. std) -. 1.0));
           ])
         rows)
  in
  Report.subsection "TPC-C";
  render (tpcc_rows ());
  Report.subsection "TPC-W";
  render (tpcw_rows ())
