(** Fig. 13: lazy-evaluation overhead on TPC-C / TPC-W.

    Both builds run identical transaction sequences on identical fresh
    databases; outputs are compared byte-for-byte before any time is
    reported. *)

val txn_count : int
(** Transactions per TPC-C type per build (40). *)

val tpcc_rows : unit -> (string * float * float) list
(** [(type, standard_ms, lazy_ms)] per transaction type. *)

val tpcw_rows : unit -> (string * float * float) list

val fig13 : unit -> unit
