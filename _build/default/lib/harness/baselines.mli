(** Extra experiments beyond the paper's figures: the prefetching baseline
    (supporting the Sec. 1 argument) and the Sec. 6.7 flush policies. *)

val prefetch_compare : unit -> unit
(** Original vs. prefetch (async issue over a bounded connection pool) vs.
    Sloth, across an RTT sweep. *)

val flush_policies : unit -> unit
(** Sloth page loads under [At_size] thresholds vs. [On_demand]. *)
