(** Fig. 11: how many methods the selective-compilation analysis labels
    persistent.

    The paper reports the split for its two Java codebases (OpenMRS: 7616
    persistent / 2097 not; itracker: 2031 / 421).  Here the
    inter-procedural persistence analysis runs over synthetic
    kernel-language corpora with the same method counts and call-graph
    shapes calibrated so that a similar share of methods reaches the
    database transitively. *)

module B = Sloth_kernel.Builder

(* A corpus: [n_funcs] small methods; a fraction issue queries directly; a
   sparse acyclic call graph spreads persistence the way service layers
   do.  Bodies are minimal — only the structure matters to the analysis. *)
let corpus ~name ~n_funcs ~direct_query_fraction ~avg_calls ~seed =
  let rng = Random.State.make [| seed |] in
  let b = B.create () in
  let open B in
  let funcs =
    List.init n_funcs (fun i ->
        let fname = Printf.sprintf "m%d" i in
        let queries =
          if Random.State.float rng 1.0 < direct_query_fraction then
            [
              assign b "r"
                (read
                   (str "SELECT COUNT(*) AS n FROM kv WHERE n > "
                   +% var "p0"));
            ]
          else []
        in
        let calls =
          if i = 0 then []
          else
            let n_calls =
              let x = Random.State.float rng 1.0 in
              if x < Float.exp (-.avg_calls) then 0
              else if x < Float.exp (-.avg_calls) *. (1.0 +. avg_calls) then 1
              else 2
            in
            List.init n_calls (fun _ ->
                let callee = Random.State.int rng i in
                expr_stmt b (call (Printf.sprintf "m%d" callee) [ var "p0"; num 1 ]))
        in
        let body =
          seq b
            ([ assign b "t" (var "p0" +% var "p1") ]
            @ queries @ calls
            @ [ return b (var "t") ])
        in
        func fname [ "p0"; "p1" ] body)
  in
  let main = seq b [ expr_stmt b (call "m0" [ num 1; num 2 ]) ] in
  (name, B.program funcs main)

(* Calibrated against the paper's proportions: ~78 % of medrec methods and
   ~83 % of tracker methods end up persistent. *)
let corpora () =
  [
    corpus ~name:"medrec-kernel" ~n_funcs:9713 ~direct_query_fraction:0.50
      ~avg_calls:1.05 ~seed:11;
    corpus ~name:"tracker-kernel" ~n_funcs:2452 ~direct_query_fraction:0.57
      ~avg_calls:1.15 ~seed:12;
  ]

let fig11 () =
  Report.section "Fig 11: persistent methods identified";
  Report.table
    ~header:
      [ "application"; "# persistent"; "# non-persistent"; "% non-persistent" ]
    (List.map
       (fun (name, program) ->
         let a = Sloth_kernel.Analysis.analyze program in
         let p, np = Sloth_kernel.Analysis.persistent_count a in
         [
           name;
           string_of_int p;
           string_of_int np;
           Printf.sprintf "%.0f%%"
             (100.0 *. float_of_int np /. float_of_int (p + np));
         ])
       (corpora ()))
