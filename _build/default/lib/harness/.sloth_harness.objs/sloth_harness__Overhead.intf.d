lib/harness/overhead.mli:
