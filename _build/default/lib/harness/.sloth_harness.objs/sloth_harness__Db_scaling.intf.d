lib/harness/db_scaling.mli: Runner Sloth_storage Sloth_workload
