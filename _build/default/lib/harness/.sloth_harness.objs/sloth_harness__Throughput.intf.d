lib/harness/throughput.mli: Runner
