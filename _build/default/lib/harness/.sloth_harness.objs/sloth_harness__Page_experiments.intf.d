lib/harness/page_experiments.mli: Runner Sloth_workload
