lib/harness/cdf.ml: Array Float List
