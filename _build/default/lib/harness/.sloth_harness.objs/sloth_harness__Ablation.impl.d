lib/harness/ablation.ml: Float Fun List Printf Report Sloth_core Sloth_driver Sloth_kernel Sloth_net Sloth_storage
