lib/harness/report.ml: Cdf Float List Printf Stdlib String
