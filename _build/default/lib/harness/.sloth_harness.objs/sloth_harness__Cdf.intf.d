lib/harness/cdf.mli:
