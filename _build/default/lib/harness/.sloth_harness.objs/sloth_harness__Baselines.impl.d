lib/harness/baselines.ml: Hashtbl List Printf Report Runner Sloth_core Sloth_driver Sloth_web Sloth_workload
