lib/harness/report.mli:
