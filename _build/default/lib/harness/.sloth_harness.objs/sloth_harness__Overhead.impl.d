lib/harness/overhead.ml: List Printf Report Sloth_core Sloth_driver Sloth_kernel Sloth_net Sloth_storage Sloth_workload
