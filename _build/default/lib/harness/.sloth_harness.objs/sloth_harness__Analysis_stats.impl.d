lib/harness/analysis_stats.ml: Float List Printf Random Report Sloth_kernel
