lib/harness/runner.mli: Sloth_core Sloth_storage Sloth_web Sloth_workload
