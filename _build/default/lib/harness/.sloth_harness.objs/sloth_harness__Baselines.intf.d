lib/harness/baselines.mli:
