lib/harness/ablation.mli: Sloth_kernel
