lib/harness/db_scaling.ml: List Printf Report Runner Sloth_storage Sloth_web Sloth_workload
