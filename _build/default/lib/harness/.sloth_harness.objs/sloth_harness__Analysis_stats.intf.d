lib/harness/analysis_stats.mli: Sloth_kernel
