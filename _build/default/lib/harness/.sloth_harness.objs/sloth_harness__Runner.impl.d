lib/harness/runner.ml: List Sloth_core Sloth_driver Sloth_net Sloth_storage Sloth_web Sloth_workload
