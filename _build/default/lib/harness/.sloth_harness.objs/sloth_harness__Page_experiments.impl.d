lib/harness/page_experiments.ml: Hashtbl List Printf Report Runner Sloth_storage Sloth_web Sloth_workload
