lib/harness/throughput.ml: Float List Option Page_experiments Printf Report Runner Sloth_net Sloth_web Sloth_workload
