module Page = Sloth_web.Page

let memo : (string * float, Runner.page_run list) Hashtbl.t = Hashtbl.create 8

let db_memo : (string, Sloth_storage.Database.t) Hashtbl.t = Hashtbl.create 4

let app_db (module A : Sloth_workload.App_sig.S) =
  match Hashtbl.find_opt db_memo A.name with
  | Some db -> db
  | None ->
      let db = Runner.prepare (module A) in
      Hashtbl.replace db_memo A.name db;
      db

let runs (module A : Sloth_workload.App_sig.S) ~rtt_ms =
  match Hashtbl.find_opt memo (A.name, rtt_ms) with
  | Some r -> r
  | None ->
      let db = app_db (module A) in
      let r = Runner.run_app ~rtt_ms ~db (module A) in
      Hashtbl.replace memo (A.name, rtt_ms) r;
      r

let ratio_figure ~figure (module A : Sloth_workload.App_sig.S) =
  let rs = runs (module A) ~rtt_ms:0.5 in
  Report.section
    (Printf.sprintf "%s: %s benchmarks (%d pages, RTT 0.5 ms)" figure A.name
       (List.length rs));
  let speedups = List.map Runner.speedup rs in
  let trips = List.map Runner.round_trip_ratio rs in
  let queries = List.map Runner.query_ratio rs in
  Report.subsection "(a) load time ratio (original / Sloth)";
  Report.cdf_summary ~name:"speedup" speedups;
  Report.cdf_series ~name:"speedup" speedups;
  Report.subsection "(b) round trip ratio (original / Sloth)";
  Report.cdf_summary ~name:"round trips" trips;
  Report.cdf_series ~name:"round trips" trips;
  Report.subsection "(c) total issued queries ratio (original / Sloth)";
  Report.cdf_summary ~name:"queries" queries;
  Report.cdf_series ~name:"queries" queries;
  let max_batch =
    List.fold_left (fun acc r -> max acc r.Runner.sloth.Page.max_batch) 0 rs
  in
  Printf.printf "\n  largest single batch observed: %d queries\n" max_batch

let fig5 () = ratio_figure ~figure:"Fig 5" Sloth_workload.App_sig.tracker
let fig6 () = ratio_figure ~figure:"Fig 6" Sloth_workload.App_sig.medrec

let fig8 () =
  Report.section "Fig 8: aggregate time breakdown (network / app / db)";
  List.iter
    (fun (module A : Sloth_workload.App_sig.S) ->
      let rs = runs (module A) ~rtt_ms:0.5 in
      let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rs in
      let line label app db net =
        let total = app +. db +. net in
        Report.table
          ~header:[ label; "ms"; "share" ]
          [
            [ "network"; Printf.sprintf "%.0f" net;
              Printf.sprintf "%.0f%%" (100.0 *. net /. total) ];
            [ "app server"; Printf.sprintf "%.0f" app;
              Printf.sprintf "%.0f%%" (100.0 *. app /. total) ];
            [ "db"; Printf.sprintf "%.0f" db;
              Printf.sprintf "%.0f%%" (100.0 *. db /. total) ];
            [ "total"; Printf.sprintf "%.0f" total; "100%" ];
          ]
      in
      Report.subsection (A.name ^ " / original");
      line "original"
        (sum (fun r -> r.Runner.original.Page.app_ms))
        (sum (fun r -> r.Runner.original.Page.db_ms))
        (sum (fun r -> r.Runner.original.Page.net_ms));
      Report.subsection (A.name ^ " / Sloth");
      line "sloth"
        (sum (fun r -> r.Runner.sloth.Page.app_ms))
        (sum (fun r -> r.Runner.sloth.Page.db_ms))
        (sum (fun r -> r.Runner.sloth.Page.net_ms)))
    [ Sloth_workload.App_sig.tracker; Sloth_workload.App_sig.medrec ]

let fig9 () =
  Report.section "Fig 9: speedup vs network round-trip time";
  List.iter
    (fun (module A : Sloth_workload.App_sig.S) ->
      Report.subsection A.name;
      List.iter
        (fun rtt_ms ->
          let rs = runs (module A) ~rtt_ms in
          let speedups = List.map Runner.speedup rs in
          Report.cdf_summary
            ~name:(Printf.sprintf "RTT %.1f ms" rtt_ms)
            speedups)
        [ 0.5; 1.0; 10.0 ])
    [ Sloth_workload.App_sig.tracker; Sloth_workload.App_sig.medrec ]

let appendix () =
  List.iter
    (fun (module A : Sloth_workload.App_sig.S) ->
      let rs = runs (module A) ~rtt_ms:0.5 in
      Report.section (Printf.sprintf "Appendix: %s benchmarks" A.name);
      Report.table
        ~header:
          [
            "benchmark"; "orig ms"; "orig trips"; "sloth ms"; "sloth trips";
            "max batch"; "orig queries"; "sloth queries";
          ]
        (List.map
           (fun (r : Runner.page_run) ->
             [
               r.page;
               Printf.sprintf "%.1f" r.original.Page.total_ms;
               string_of_int r.original.Page.round_trips;
               Printf.sprintf "%.1f" r.sloth.Page.total_ms;
               string_of_int r.sloth.Page.round_trips;
               string_of_int r.sloth.Page.max_batch;
               string_of_int r.original.Page.queries;
               string_of_int r.sloth.Page.queries;
             ])
           rs))
    [ Sloth_workload.App_sig.tracker; Sloth_workload.App_sig.medrec ]
