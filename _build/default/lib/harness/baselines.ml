(** Extra experiment (beyond the paper's figures, supporting its Sec. 1
    argument): Sloth versus the prefetching baseline.

    Prefetching hides each round trip behind subsequent computation but
    still pays one trip per query and cannot help dependent chains; Sloth
    collapses trips altogether.  The gap widens with network latency —
    "there is not enough computation to perform between the point when the
    query parameters are available and the query results are used". *)

module Page = Sloth_web.Page

let pages =
  [
    ("medrec", Sloth_workload.App_sig.medrec, "patient_dashboard");
    ("medrec", Sloth_workload.App_sig.medrec, "encounter_display");
    ("medrec", Sloth_workload.App_sig.medrec, "alert_list");
    ("tracker", Sloth_workload.App_sig.tracker, "list_projects");
    ("tracker", Sloth_workload.App_sig.tracker, "view_issue_activity");
  ]

let prefetch_compare () =
  Report.section "Extra: Sloth vs the prefetching baseline";
  Printf.printf "  (prefetch pool: %d connections)
"
    !Sloth_driver.Connection.async_pool_size;
  let dbs = Hashtbl.create 4 in
  let db_for name app =
    match Hashtbl.find_opt dbs name with
    | Some db -> db
    | None ->
        let db = Runner.prepare app in
        Hashtbl.replace dbs name db;
        db
  in
  List.iter
    (fun rtt_ms ->
      Report.subsection (Printf.sprintf "RTT %.1f ms" rtt_ms);
      Report.table
        ~header:
          [ "page"; "original ms"; "prefetch ms"; "sloth ms";
            "sloth vs prefetch" ]
        (List.map
           (fun (app_name, app, page) ->
             let db = db_for app_name app in
             let run = Runner.run_page ~db ~rtt_ms app page in
             let pre = Runner.load_prefetch ~db ~rtt_ms app page in
             [
               Printf.sprintf "%s/%s" app_name page;
               Printf.sprintf "%.1f" run.original.Page.total_ms;
               Printf.sprintf "%.1f" pre.Page.total_ms;
               Printf.sprintf "%.1f" run.sloth.Page.total_ms;
               Printf.sprintf "%.2fx"
                 (pre.Page.total_ms /. run.sloth.Page.total_ms);
             ])
           pages))
    [ 0.5; 2.0; 10.0 ]

(** Extra experiment: the alternative batch-shipping policies the paper
    sketches as future work (Sec. 6.7) — flush eagerly once the pending
    batch reaches a size threshold.  Small thresholds ship batches that
    overlap less per trip; On_demand maximizes batch size. *)
let flush_policies () =
  Report.section "Extra: query store flush policies (Sec 6.7)";
  let db = Runner.prepare Sloth_workload.App_sig.medrec in
  let policies =
    [
      ("at-size 4", Some (Sloth_core.Query_store.At_size 4));
      ("at-size 8", Some (Sloth_core.Query_store.At_size 8));
      ("at-size 16", Some (Sloth_core.Query_store.At_size 16));
      ("on-demand", None);
    ]
  in
  List.iter
    (fun page ->
      Report.subsection page;
      Report.table
        ~header:[ "policy"; "sloth ms"; "round trips"; "max batch" ]
        (List.map
           (fun (label, policy) ->
             let m =
               Runner.load_sloth ?policy ~db ~rtt_ms:0.5
                 Sloth_workload.App_sig.medrec page
             in
             [
               label;
               Printf.sprintf "%.1f" m.Page.total_ms;
               string_of_int m.Page.round_trips;
               string_of_int m.Page.max_batch;
             ])
           policies))
    [ "encounter_display"; "patient_dashboard"; "admin/concept/list" ]
