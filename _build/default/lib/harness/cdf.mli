(** Small statistics helpers for the experiment reports. *)

val sorted : float list -> float list

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation.  Raises
    [Invalid_argument] on an empty list. *)

val median : float list -> float
val mean : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val cdf_points : ?points:int -> float list -> (float * float) list
(** [(fraction, value)] pairs suitable for plotting a CDF, i.e. the sorted
    sample downsampled to [points] (default 20). *)
