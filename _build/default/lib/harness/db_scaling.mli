(** Fig. 10: page load time vs. database size. *)

val scaled_db :
  (module Sloth_workload.App_sig.S) ->
  tables:(string * int) list ->
  Sloth_storage.Database.t
(** Populate a fresh application database with the named tables' row
    counts overridden. *)

val sweep :
  (module Sloth_workload.App_sig.S) ->
  page:string ->
  sizes:(string * (string * int) list) list ->
  (string * Runner.page_run) list

val fig10 : unit -> unit
