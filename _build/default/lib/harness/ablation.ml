(** Fig. 12: effect of the compiler optimizations.

    Kernel-language page programs (model construction over query results,
    temporary chains, conditional sections, render loops) are executed
    under extended lazy evaluation with the optimizations enabled one at a
    time — no opts, SC, SC+TC, SC+TC+BD — plus the standard evaluator as
    the original-program reference.  Total virtual time over the program
    suite is reported, like the paper's stacked runs. *)

module B = Sloth_kernel.Builder
module Lazy_eval = Sloth_kernel.Lazy_eval
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection
module Runtime = Sloth_core.Runtime

(* A synthetic "page": an access check, [sections] model sections each
   registering a query and computing formatting temporaries through a
   helper, a deferrable render loop, and a view that prints only
   [consumed] of the sections — the rest of the model is never forced. *)
let page_program ~sections ~consumed ~loop_iters =
  let b = B.create () in
  let open B in
  let fmt =
    func "fmt" [ "p0"; "p1" ]
      (seq b
         [
           assign b "t" (var "p0" *% num 3);
           assign b "u" (var "t" +% var "p1");
           assign b "w" (var "u" %% num 97);
           return b (var "w" +% num 1);
         ])
  in
  let helper_free =
    (* A non-persistent helper with a side effect-free body: SC compiles it
       strictly. *)
    func "scale" [ "p0"; "p1" ]
      (seq b
         [
           assign b "acc" (num 0);
           for_range b "j" ~from:(num 0) ~below:(num 4) (fun j ->
               assign b "acc" (var "acc" +% (var "p0" *% j) +% var "p1"));
           return b (var "acc");
         ])
  in
  let section i =
    let k = 1 + (i mod 19) in
    let v n = Printf.sprintf "%s%d" n i in
    [
      (* The section's data: registered, consumed only if rendered. *)
      assign b (v "rows")
        (read (str (Printf.sprintf "SELECT v AS v, n AS n FROM kv WHERE k = %d" k)));
      (* Temporary chain — coalescing fodder. *)
      assign b (v "t1") (num i +% num 7);
      assign b (v "t2") (var (v "t1") *% num 3);
      assign b (v "t3") (var (v "t2") -% num 5);
      assign b (v "t4") (call "fmt" [ var (v "t3"); num i ]);
      assign b (v "out") (var (v "t4") +% call "scale" [ var (v "t1"); num 2 ]);
      (* A heap write into the model record: never deferrable, so it splits
         the statement sequence — what follows benefits from branch
         deferral, not from coalescing. *)
      set_field b (var "model") "a" (var (v "out"));
      (* A deferrable conditional section. *)
      if_ b
        (var (v "t1") <% var (v "t2"))
        (seq b
           [
             assign b (v "flag") (num 1);
             assign b (v "extra") (var (v "t2") +% num 10);
           ])
        (assign b (v "flag") (num 0));
      assign b (v "acc") (num 0);
      set_field b (var "model") "b" (str (Printf.sprintf "s%d" i));
      (* A deferrable render-preparation loop, standing alone after the
         heap write: only branch deferral can postpone it. *)
      for_range b "r" ~from:(num 0) ~below:(num loop_iters) (fun r ->
          assign b (v "acc") (var (v "acc") +% (r *% num 2) +% var (v "t1")));
    ]
  in
  let render i =
    [
      print b (var (Printf.sprintf "out%d" i));
      print b (field (index (var (Printf.sprintf "rows%d" i)) (num 0)) "v");
      print b (var (Printf.sprintf "acc%d" i));
    ]
  in
  let main =
    seq b
      ([
         assign b "x1" (num 3);
         assign b "x2" (num 9);
         assign b "model" (record [ ("a", num 0); ("b", str "") ]);
         assign b "auth"
           (field (index (read (str "SELECT COUNT(*) AS n FROM kv")) (num 0)) "n");
       ]
      @ List.concat_map section (List.init sections Fun.id)
      @ [
          if_ b (var "auth" >% num 0)
            (seq b (List.concat_map render (List.init consumed Fun.id)))
            (print b (str "unauthorized"));
        ])
  in
  B.program [ fmt; helper_free ] main

let suite name =
  (* Two suites shaped like the two applications: medrec-k pages carry more
     sections. *)
  match name with
  | "tracker-k" ->
      List.init 6 (fun i ->
          page_program ~sections:(4 + i) ~consumed:(2 + (i / 2))
            ~loop_iters:(20 + (5 * i)))
  | _ ->
      List.init 8 (fun i ->
          page_program ~sections:(6 + i) ~consumed:(3 + (i / 2))
            ~loop_iters:(30 + (6 * i)))

let fresh_env () =
  let db = Sloth_storage.Database.create () in
  Sloth_kernel.Generator.setup_schema db;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  (db, clock, Conn.create db link)

let run_lazy_suite programs opts =
  List.fold_left
    (fun acc prog ->
      let _db, clock, conn = fresh_env () in
      let store = Sloth_core.Query_store.create conn in
      Runtime.set_clock (Some clock);
      Runtime.reset ();
      ignore (Lazy_eval.run ~opts prog store);
      Sloth_core.Query_store.flush store;
      Runtime.set_clock None;
      acc +. Vclock.total clock)
    0.0 programs

let run_standard_suite programs =
  List.fold_left
    (fun acc prog ->
      let _db, clock, conn = fresh_env () in
      Runtime.set_clock (Some clock);
      Runtime.reset ();
      ignore (Sloth_kernel.Standard.run prog conn);
      Runtime.set_clock None;
      acc +. Vclock.total clock)
    0.0 programs

let configs =
  [
    ("noopt", { Lazy_eval.sc = false; tc = false; bd = false });
    ("SC", { Lazy_eval.sc = true; tc = false; bd = false });
    ("SC+TC", { Lazy_eval.sc = true; tc = true; bd = false });
    ("SC+TC+BD", Lazy_eval.all_opts);
  ]

let fig12 () =
  Report.section "Fig 12: optimization ablation (kernel page suites)";
  List.iter
    (fun suite_name ->
      let programs = suite suite_name in
      Report.subsection suite_name;
      let std = run_standard_suite programs in
      let results =
        List.map
          (fun (label, opts) -> (label, run_lazy_suite programs opts))
          configs
      in
      let worst = List.fold_left (fun m (_, t) -> Float.max m t) std results in
      Report.bar ~label:"original (standard eval)" std ~max:worst;
      List.iter (fun (label, t) -> Report.bar ~label t ~max:worst) results;
      let noopt = List.assoc "noopt" results in
      let full = List.assoc "SC+TC+BD" results in
      Printf.printf
        "  no-opt / fully-optimized = %.2fx; fully-optimized vs original = %.2fx\n"
        (noopt /. full) (std /. full))
    [ "tracker-k"; "medrec-k" ]
