lib/net/link.ml: Stats Vclock
