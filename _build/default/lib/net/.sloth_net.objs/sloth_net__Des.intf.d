lib/net/des.mli:
