lib/net/link.mli: Stats Vclock
