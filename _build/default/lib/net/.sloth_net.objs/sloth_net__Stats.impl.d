lib/net/stats.ml: Format
