lib/net/vclock.ml: Format
