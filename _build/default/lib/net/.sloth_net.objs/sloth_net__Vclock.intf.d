lib/net/vclock.mli: Format
