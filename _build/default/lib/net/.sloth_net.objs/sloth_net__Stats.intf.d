lib/net/stats.mli: Format
