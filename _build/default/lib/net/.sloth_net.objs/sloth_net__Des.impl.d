lib/net/des.ml: Array Queue
