type category = App | Db | Network

type t = {
  mutable now : float;
  mutable app : float;
  mutable db : float;
  mutable net : float;
}

let create () = { now = 0.0; app = 0.0; db = 0.0; net = 0.0 }

let now t = t.now

let advance t cat ms =
  assert (ms >= 0.0);
  t.now <- t.now +. ms;
  match cat with
  | App -> t.app <- t.app +. ms
  | Db -> t.db <- t.db +. ms
  | Network -> t.net <- t.net +. ms

let elapsed t = function
  | App -> t.app
  | Db -> t.db
  | Network -> t.net

let total t = t.app +. t.db +. t.net

let reset t =
  t.app <- 0.0;
  t.db <- 0.0;
  t.net <- 0.0

let snapshot t = (t.app, t.db, t.net)

let pp_category ppf = function
  | App -> Format.pp_print_string ppf "app"
  | Db -> Format.pp_print_string ppf "db"
  | Network -> Format.pp_print_string ppf "network"
