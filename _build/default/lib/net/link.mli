(** Network link model between application server and database server.

    A round trip costs one RTT plus payload transfer time.  The default RTT
    is 0.5 ms, matching the paper's same-datacenter setting; the scaling
    experiment (Fig. 9) sweeps it to 1 ms and 10 ms. *)

type t

val create : ?rtt_ms:float -> ?bandwidth_mb_s:float -> Vclock.t -> t
(** Defaults: [rtt_ms = 0.5], [bandwidth_mb_s = 100.0]. *)

val rtt_ms : t -> float
val set_rtt_ms : t -> float -> unit

val clock : t -> Vclock.t
val stats : t -> Stats.t

val round_trip : t -> queries:int -> bytes:int -> unit
(** Charge one round trip to the clock's Network category and record it in
    the stats. *)

val transfer_ms : t -> bytes:int -> float
(** Payload transfer time only (no RTT), for diagnostics. *)
