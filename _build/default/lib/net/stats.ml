type t = {
  mutable round_trips : int;
  mutable queries : int;
  mutable bytes : int;
  mutable max_batch : int;
}

let create () = { round_trips = 0; queries = 0; bytes = 0; max_batch = 0 }

let record_round_trip t ~queries ~bytes =
  t.round_trips <- t.round_trips + 1;
  t.queries <- t.queries + queries;
  t.bytes <- t.bytes + bytes;
  if queries > t.max_batch then t.max_batch <- queries

let round_trips t = t.round_trips
let queries t = t.queries
let bytes t = t.bytes
let max_batch t = t.max_batch

let reset t =
  t.round_trips <- 0;
  t.queries <- 0;
  t.bytes <- 0;
  t.max_batch <- 0

let pp ppf t =
  Format.fprintf ppf "round-trips=%d queries=%d bytes=%d max-batch=%d"
    t.round_trips t.queries t.bytes t.max_batch
