type t = {
  mutable rtt_ms : float;
  bandwidth_mb_s : float;
  clock : Vclock.t;
  stats : Stats.t;
}

let create ?(rtt_ms = 0.5) ?(bandwidth_mb_s = 100.0) clock =
  { rtt_ms; bandwidth_mb_s; clock; stats = Stats.create () }

let rtt_ms t = t.rtt_ms
let set_rtt_ms t rtt = t.rtt_ms <- rtt
let clock t = t.clock
let stats t = t.stats

let transfer_ms t ~bytes =
  (* bandwidth is MB/s; convert bytes to ms of transfer time. *)
  float_of_int bytes /. (t.bandwidth_mb_s *. 1_000_000.0) *. 1000.0

let round_trip t ~queries ~bytes =
  Stats.record_round_trip t.stats ~queries ~bytes;
  Vclock.advance t.clock Vclock.Network (t.rtt_ms +. transfer_ms t ~bytes)
