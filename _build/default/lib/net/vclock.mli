(** Virtual clock with per-category time accounting.

    All latency figures in the reproduction are measured in *virtual
    milliseconds* advanced explicitly by the simulated components (network,
    database, application server).  This makes every experiment
    deterministic while preserving the relative shape of the paper's
    results.  Each advance is attributed to a category so that the Fig. 8
    time-breakdown experiment falls out of ordinary page loads. *)

type category =
  | App      (** application-server computation, incl. lazy-eval overhead *)
  | Db       (** query execution inside the database server *)
  | Network  (** wire time: round trips and payload transfer *)

type t

val create : unit -> t
(** A fresh clock at time [0.0] with empty accounting. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val advance : t -> category -> float -> unit
(** [advance t cat ms] moves the clock forward by [ms] (which must be
    non-negative) and charges the duration to [cat]. *)

val elapsed : t -> category -> float
(** Total virtual time charged to a category since creation (or the last
    {!reset}). *)

val total : t -> float
(** Sum of all categories; equals {!now} minus time at last reset. *)

val reset : t -> unit
(** Zero the accounting counters.  The absolute clock keeps running so that
    timestamps remain monotonic across measurements. *)

val snapshot : t -> float * float * float
(** [(app, db, network)] elapsed milliseconds, in that order. *)

val pp_category : Format.formatter -> category -> unit
