lib/web/page.ml: Format Sloth_core Sloth_net View Writer
