lib/web/model.ml: Hashtbl Html List Sloth_core
