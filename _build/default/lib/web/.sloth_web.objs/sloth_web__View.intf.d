lib/web/view.mli: Model Writer
