lib/web/writer.mli: Html Sloth_core Sloth_net
