lib/web/page.mli: Format Model Sloth_net
