lib/web/view.ml: Html List Model Writer
