lib/web/html.mli:
