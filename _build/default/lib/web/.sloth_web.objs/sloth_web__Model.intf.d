lib/web/model.mli: Html Sloth_core
