lib/web/html.ml: Buffer List Printf String
