lib/web/writer.ml: Buffer Html List Sloth_core Sloth_net
