(** The MVC model: an ordered map from names to possibly-deferred HTML
    fragments.

    Under the original strategy every cell is an already-computed literal
    thunk; under Sloth, cells are genuine thunks holding back query results
    until the view writer flushes (the Spring extension of Sec. 5). *)

type t

val create : unit -> t

val put : t -> string -> Html.t Sloth_core.Thunk.t -> unit
(** Later [put]s with the same name override (last wins), as controller
    chains do in Spring. *)

val put_now : t -> string -> Html.t -> unit

val entries : t -> (string * Html.t Sloth_core.Thunk.t) list
(** In insertion order (of first put). *)

val get : t -> string -> Html.t Sloth_core.Thunk.t option
val size : t -> int
