(** The thunk-aware output writer (the paper's JspWriter extension,
    Sec. 5): thunks written to the stream are buffered unevaluated and only
    forced when the page is flushed, which is what lets whole models of
    deferred query results accumulate into one batch. *)

type t

val create : Sloth_net.Vclock.t -> t

val write : t -> string -> unit
val write_html : t -> Html.t -> unit
val write_thunk : t -> Html.t Sloth_core.Thunk.t -> unit

val flush : t -> string
(** Force buffered thunks in order and produce the final page.  Rendering
    charges App time per HTML node (template engines are not free). *)

val render_cost_per_node_ms : float ref
(** Virtual App-time per rendered HTML node (default 0.0005 ms). *)
