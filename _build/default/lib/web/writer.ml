type chunk = Str of string | Deferred of Html.t Sloth_core.Thunk.t

type t = { clock : Sloth_net.Vclock.t; mutable chunks : chunk list }

let render_cost_per_node_ms = ref 0.0005

let create clock = { clock; chunks = [] }
let write t s = t.chunks <- Str s :: t.chunks

let charge_render t html =
  Sloth_net.Vclock.advance t.clock Sloth_net.Vclock.App
    (!render_cost_per_node_ms *. float_of_int (Html.node_count html))

let write_html t html =
  charge_render t html;
  t.chunks <- Str (Html.to_string html) :: t.chunks

let write_thunk t thunk = t.chunks <- Deferred thunk :: t.chunks

let flush t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun chunk ->
      match chunk with
      | Str s -> Buffer.add_string buf s
      | Deferred thunk ->
          let html = Sloth_core.Thunk.force thunk in
          charge_render t html;
          Buffer.add_string buf (Html.to_string html))
    (List.rev t.chunks);
  t.chunks <- [];
  Buffer.contents buf
