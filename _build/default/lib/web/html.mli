(** A minimal HTML fragment builder with deterministic rendering. *)

type t

val text : string -> t
(** Escaped text node. *)

val raw : string -> t
(** Unescaped markup. *)

val el : ?attrs:(string * string) list -> string -> t list -> t
val fragment : t list -> t
val empty : t

(* Conveniences used by the view layer. *)
val div : ?attrs:(string * string) list -> t list -> t
val span : ?attrs:(string * string) list -> t list -> t
val h1 : string -> t
val h2 : string -> t
val p : t list -> t
val li : t list -> t
val ul : t list -> t
val tr : t list -> t
val td : t list -> t
val table : t list -> t

val int : int -> t
(** [text] of an integer. *)

val to_string : t -> string

val node_count : t -> int
(** Number of nodes — the view layer charges render time per node. *)
