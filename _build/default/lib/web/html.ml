type t =
  | Text of string
  | Raw of string
  | El of string * (string * string) list * t list
  | Fragment of t list

let text s = Text s
let raw s = Raw s
let el ?(attrs = []) tag children = El (tag, attrs, children)
let fragment ts = Fragment ts
let empty = Fragment []
let div ?attrs children = el ?attrs "div" children
let span ?attrs children = el ?attrs "span" children
let h1 s = el "h1" [ text s ]
let h2 s = el "h2" [ text s ]
let p children = el "p" children
let li children = el "li" children
let ul children = el "ul" children
let tr children = el "tr" children
let td children = el "td" children
let table children = el "table" children
let int n = text (string_of_int n)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Text s -> Buffer.add_string buf (escape s)
    | Raw s -> Buffer.add_string buf s
    | El (tag, attrs, children) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf
              (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        Buffer.add_char buf '>';
        List.iter go children;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>'
    | Fragment children -> List.iter go children
  in
  go t;
  Buffer.contents buf

let rec node_count = function
  | Text _ | Raw _ -> 1
  | El (_, _, children) ->
      1 + List.fold_left (fun acc c -> acc + node_count c) 0 children
  | Fragment children ->
      List.fold_left (fun acc c -> acc + node_count c) 0 children
