type t = {
  mutable order : string list;  (* reversed insertion order *)
  cells : (string, Html.t Sloth_core.Thunk.t) Hashtbl.t;
}

let create () = { order = []; cells = Hashtbl.create 16 }

let put t name cell =
  if not (Hashtbl.mem t.cells name) then t.order <- name :: t.order;
  Hashtbl.replace t.cells name cell

let put_now t name html = put t name (Sloth_core.Thunk.literal html)

let entries t =
  List.rev_map (fun name -> (name, Hashtbl.find t.cells name)) t.order

let get t name = Hashtbl.find_opt t.cells name
let size t = List.length t.order
