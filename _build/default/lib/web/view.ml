let render writer ~title model =
  Writer.write_html writer (Html.h1 title);
  List.iter
    (fun (name, cell) ->
      Writer.write_html writer (Html.h2 name);
      Writer.write_thunk writer cell)
    (Model.entries model)
