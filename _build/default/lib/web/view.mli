(** The standard view: renders a model into sections through the
    thunk-aware writer, deferring every cell until flush. *)

val render : Writer.t -> title:string -> Model.t -> unit
