module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Cost = Sloth_storage.Cost

type t = {
  db : Db.t;
  link : Sloth_net.Link.t;
  mutable slots : float array;
      (* async pool: when each pooled connection becomes free *)
}

exception Server_error of string

let app_cost_per_stmt_ms = ref 1.0
let app_cost_per_row_ms = ref 0.02

let create db link = { db; link; slots = [||] }
let link t = t.link
let clock t = Sloth_net.Link.clock t.link
let stats t = Sloth_net.Link.stats t.link
let database t = t.db

let request_bytes stmts =
  List.fold_left
    (fun acc s -> acc + String.length (Sloth_sql.Printer.to_string s) + 8)
    16 stmts

let charge_db t ms = Sloth_net.Vclock.advance (clock t) Sloth_net.Vclock.Db ms

(* Client-side work: statement preparation before the trip plus result-set
   hydration after it. *)
let charge_app t ~stmts ~rows =
  Sloth_net.Vclock.advance (clock t) Sloth_net.Vclock.App
    ((!app_cost_per_stmt_ms *. float_of_int stmts)
    +. (!app_cost_per_row_ms *. float_of_int rows))

let execute t stmt =
  let outcome =
    try Db.exec t.db stmt
    with Db.Sql_error msg ->
      (* A failed statement still consumed a round trip. *)
      Sloth_net.Link.round_trip t.link ~queries:1
        ~bytes:(request_bytes [ stmt ] + 16);
      charge_db t (Db.cost_model t.db).fixed_ms;
      raise (Server_error msg)
  in
  Sloth_net.Link.round_trip t.link ~queries:1
    ~bytes:(request_bytes [ stmt ] + Rs.size_bytes outcome.rs);
  charge_db t outcome.cost_ms;
  charge_app t ~stmts:1 ~rows:(Rs.num_rows outcome.rs);
  outcome

let execute_sql t sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> execute t stmt
  | exception Sloth_sql.Parser.Error msg -> raise (Server_error msg)

let query t sql = (execute_sql t sql).rs

let execute_batch t stmts =
  match stmts with
  | [] -> []
  | _ ->
      let outcomes =
        List.map
          (fun stmt ->
            try Db.exec t.db stmt
            with Db.Sql_error msg ->
              Sloth_net.Link.round_trip t.link ~queries:(List.length stmts)
                ~bytes:(request_bytes stmts + 16);
              raise (Server_error msg))
          stmts
      in
      (* Reads run in parallel on the server; writes run sequentially. *)
      let read_costs, write_cost =
        List.fold_left2
          (fun (reads, writes) stmt (o : Db.outcome) ->
            if Sloth_sql.Ast.is_write stmt then (reads, writes +. o.cost_ms)
            else (o.cost_ms :: reads, writes))
          ([], 0.0) stmts outcomes
      in
      let db_ms =
        Cost.batch_ms (Db.cost_model t.db) (List.rev read_costs) +. write_cost
      in
      let response_bytes =
        List.fold_left
          (fun acc (o : Db.outcome) -> acc + Rs.size_bytes o.rs)
          0 outcomes
      in
      Sloth_net.Link.round_trip t.link ~queries:(List.length stmts)
        ~bytes:(request_bytes stmts + response_bytes);
      charge_db t db_ms;
      charge_app t ~stmts:(List.length stmts)
        ~rows:
          (List.fold_left
             (fun acc (o : Db.outcome) -> acc + Rs.num_rows o.rs)
             0 outcomes);
      outcomes

let execute_batch_sql t sqls =
  let stmts =
    List.map
      (fun sql ->
        match Sloth_sql.Parser.parse sql with
        | stmt -> stmt
        | exception Sloth_sql.Parser.Error msg -> raise (Server_error msg))
      sqls
  in
  execute_batch t stmts

type async_handle = {
  outcome_async : Db.outcome;
  ready_at : float;  (* absolute virtual time when the response lands *)
  mutable awaited : bool;
}

let async_pool_size = ref 4

(* One in-flight query per pooled connection: [slots.(i)] is the time at
   which connection [i] becomes free again. *)
let slots_for t =
  if Array.length t.slots <> max 1 !async_pool_size then
    t.slots <- Array.make (max 1 !async_pool_size) neg_infinity;
  t.slots

let execute_async t stmt =
  let outcome =
    try Db.exec t.db stmt
    with Db.Sql_error msg -> raise (Server_error msg)
  in
  (* The request goes out on the first free pooled connection; the response
     is due one round trip plus server execution after that.  The clock
     does not advance: the application keeps computing while the query is
     in flight — but parallelism is bounded by the pool, unlike a Sloth
     batch, which ships everything in one request. *)
  let bytes = request_bytes [ stmt ] + Rs.size_bytes outcome.rs in
  Sloth_net.Stats.record_round_trip (stats t) ~queries:1 ~bytes;
  charge_app t ~stmts:1 ~rows:(Rs.num_rows outcome.rs);
  let slots = slots_for t in
  let best = ref 0 in
  Array.iteri (fun i free -> if free < slots.(!best) then best := i) slots;
  let depart = Float.max (Sloth_net.Vclock.now (clock t)) slots.(!best) in
  let ready_at =
    depart
    +. Sloth_net.Link.rtt_ms t.link
    +. Sloth_net.Link.transfer_ms t.link ~bytes
    +. outcome.cost_ms
  in
  slots.(!best) <- ready_at;
  { outcome_async = outcome; ready_at; awaited = false }

let await t h =
  if not h.awaited then begin
    h.awaited <- true;
    let now = Sloth_net.Vclock.now (clock t) in
    if now < h.ready_at then
      Sloth_net.Vclock.advance (clock t) Sloth_net.Vclock.Network
        (h.ready_at -. now)
  end;
  h.outcome_async
