(** Client connection to a (simulated) remote database server.

    Two protocols are provided, mirroring the paper's Sec. 5:

    - {!execute}: the standard driver — one statement per round trip.
    - {!execute_batch}: the Sloth batch driver extension — many statements
      in a single round trip; the server runs the read statements in
      parallel and the writes sequentially in order.

    Every call charges the connection's virtual clock: the Network category
    for the round trip and payload, the Db category for server-side
    execution. *)

type t

exception Server_error of string
(** Surfaced [Database.Sql_error]s.  Time for the failed round trip is still
    charged, like a real wire error. *)

val create : Sloth_storage.Database.t -> Sloth_net.Link.t -> t

val app_cost_per_stmt_ms : float ref
(** Client-side CPU per statement: driver marshalling, ORM hydration,
    framework bookkeeping (default 0.55 ms — calibrated so the page-load
    time breakdown matches the paper's Fig. 8 proportions). *)

val app_cost_per_row_ms : float ref
(** Client-side CPU per returned row (default 0.02 ms). *)

val link : t -> Sloth_net.Link.t
val clock : t -> Sloth_net.Vclock.t
val stats : t -> Sloth_net.Stats.t
val database : t -> Sloth_storage.Database.t

val execute : t -> Sloth_sql.Ast.stmt -> Sloth_storage.Database.outcome
val execute_sql : t -> string -> Sloth_storage.Database.outcome

val query : t -> string -> Sloth_storage.Result_set.t

val execute_batch :
  t -> Sloth_sql.Ast.stmt list -> Sloth_storage.Database.outcome list
(** Empty batches cost nothing and perform no round trip. *)

val execute_batch_sql :
  t -> string list -> Sloth_storage.Database.outcome list

(** {2 Asynchronous execution}

    The prefetching baseline (Ramachandra et al., discussed in the paper's
    Sec. 1) hides latency by issuing queries as soon as their parameters are
    known and overlapping the round trip with computation.  [execute_async]
    starts a query without blocking virtual time; [await] charges only the
    part of the round trip that computation did not cover. *)

type async_handle

val async_pool_size : int ref
(** Connections available for outstanding asynchronous queries
    (default 4). *)

val execute_async : t -> Sloth_sql.Ast.stmt -> async_handle
(** Issue the statement now.  Counts a round trip and the per-statement
    client cost; the wire-and-server time is only charged when awaited. *)

val await : t -> async_handle -> Sloth_storage.Database.outcome
(** Block (advance the clock) until the response would have arrived:
    [max 0 (ready_time - now)], attributed to the Network category.
    Idempotent. *)
