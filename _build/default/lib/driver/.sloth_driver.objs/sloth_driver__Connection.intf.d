lib/driver/connection.mli: Sloth_net Sloth_sql Sloth_storage
