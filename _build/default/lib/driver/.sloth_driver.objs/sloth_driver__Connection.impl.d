lib/driver/connection.ml: Array Float List Sloth_net Sloth_sql Sloth_storage String
