(* Quickstart: the Sloth runtime in five minutes.

   We create a tiny database behind a simulated 0.5 ms link, write the same
   data-access code once against the EXEC interface, and run it under both
   execution strategies.  Watch the round-trip counter.

   Run with: dune exec examples/quickstart.exe *)

module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Value = Sloth_storage.Value
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Stats = Sloth_net.Stats
module Conn = Sloth_driver.Connection

(* A product catalogue with a handful of rows. *)
let make_db () =
  let db = Db.create () in
  ignore
    (Db.exec_sql db
       "CREATE TABLE product (id INT NOT NULL, name TEXT NOT NULL, price \
        FLOAT NOT NULL, PRIMARY KEY (id))");
  List.iteri
    (fun i (name, price) ->
      ignore
        (Db.exec_sql db
           (Printf.sprintf
              "INSERT INTO product (id, name, price) VALUES (%d, '%s', %g)"
              (i + 1) name price)))
    [ ("keyboard", 49.0); ("mouse", 19.5); ("monitor", 249.0);
      ("dock", 129.0); ("webcam", 59.0) ];
  db

(* The application code, written once.  It fetches five products whose
   results are only needed at the very end — prime batching material. *)
let product_report (module X : Sloth_core.Exec.S) =
  let open Sloth_sql.Ast in
  let fetch id =
    X.query
      (select_of "product" ~where:(col "id" =% int id))
      (fun rs ->
        Printf.sprintf "%s ($%s)"
          (Value.to_string (Rs.cell rs ~row:0 "name"))
          (Value.to_string (Rs.cell rs ~row:0 "price")))
  in
  let lines = List.map fetch [ 1; 2; 3; 4; 5 ] in
  (* Nothing has been demanded yet under Sloth.  Demanding the first line
     ships every pending query in ONE round trip. *)
  String.concat "\n  " (List.map X.get lines)

let run_mode name make_exec =
  let db = make_db () in
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  let conn = Conn.create db link in
  let report = product_report (make_exec conn) in
  Printf.printf "\n[%s]\n  %s\n" name report;
  Printf.printf "  round trips: %d   queries: %d   virtual time: %.2f ms\n"
    (Stats.round_trips (Link.stats link))
    (Stats.queries (Link.stats link))
    (Vclock.total clock)

let () =
  print_endline "Sloth quickstart: same code, two execution strategies";
  run_mode "original (eager)" (fun conn ->
      (module Sloth_core.Exec.Eager (struct
        let conn = conn
      end) : Sloth_core.Exec.S));
  run_mode "sloth (extended lazy)" (fun conn ->
      let store = Sloth_core.Query_store.create conn in
      (module Sloth_core.Exec.Lazy (struct
        let store = store
      end) : Sloth_core.Exec.S));
  print_endline
    "\nThe Sloth strategy registered all five queries with the query store \
     and\nexecuted them in a single batched round trip when the report was \
     rendered."
