examples/quickstart.mli:
