examples/issue_tracker.ml: List Printf Sloth_harness Sloth_web Sloth_workload String
