examples/patient_dashboard.mli:
