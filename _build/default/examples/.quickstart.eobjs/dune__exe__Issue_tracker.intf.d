examples/issue_tracker.mli:
