examples/kernel_lazy.mli:
