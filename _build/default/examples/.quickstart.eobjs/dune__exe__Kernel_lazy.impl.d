examples/kernel_lazy.ml: Builder Fun Generator Lazy_eval List Pretty Printf Sloth_core Sloth_driver Sloth_kernel Sloth_net Sloth_storage Standard String
