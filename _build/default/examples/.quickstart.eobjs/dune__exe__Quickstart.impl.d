examples/quickstart.ml: List Printf Sloth_core Sloth_driver Sloth_net Sloth_sql Sloth_storage String
