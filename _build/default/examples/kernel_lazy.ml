(* The kernel language and the soundness theorem, hands on.

   Builds the paper's running example as a kernel-language program, runs it
   under standard and extended-lazy semantics, shows that outputs agree
   while round trips differ, and demonstrates each compiler optimization.

   Run with: dune exec examples/kernel_lazy.exe *)

open Sloth_kernel
module B = Builder
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Stats = Sloth_net.Stats
module Conn = Sloth_driver.Connection
module Runtime = Sloth_core.Runtime

let fresh () =
  let db = Sloth_storage.Database.create () in
  Generator.setup_schema db;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  (clock, link, Conn.create db link)

(* The dashboard pattern: one essential query, three stored ones. *)
let program () =
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "p" (read (str "SELECT v AS v, n AS n FROM kv WHERE k = 1"));
        assign b "pid" (field (index (var "p") (num 0)) "n");
        assign b "enc"
          (read (str "SELECT COUNT(*) AS n FROM kv WHERE n > " +% var "pid"));
        assign b "vis"
          (read
             (str "SELECT COUNT(*) AS n FROM kv WHERE n > "
             +% (var "pid" +% num 1)));
        assign b "act"
          (read
             (str "SELECT COUNT(*) AS n FROM kv WHERE n > "
             +% (var "pid" +% num 2)));
        print b (var "enc");
        print b (var "vis");
        print b (var "act");
      ]
  in
  B.program [] main

let () =
  let prog = program () in
  print_endline "Kernel program (the paper's Fig. 1 pattern):";
  print_endline (Pretty.program_to_string prog);

  let clock, link, conn = fresh () in
  Runtime.set_clock (Some clock);
  let std = Standard.run prog conn in
  Runtime.set_clock None;
  Printf.printf "\n[standard semantics]\n  output: %s\n  round trips: %d\n"
    (String.concat " | " std.output)
    (Stats.round_trips (Link.stats link));

  let clock, link, conn = fresh () in
  let store = Sloth_core.Query_store.create conn in
  Runtime.set_clock (Some clock);
  let lzy = Lazy_eval.run prog store in
  Runtime.set_clock None;
  Printf.printf "[extended lazy semantics]\n  output: %s\n  round trips: %d\n"
    (String.concat " | " lzy.output)
    (Stats.round_trips (Link.stats link));
  Printf.printf "  outputs agree: %b  (the soundness theorem, on one instance)\n"
    (std.output = lzy.output);

  (* The optimizations, on a compute-heavy program. *)
  print_endline "\nOptimization ablation on a compute-heavy page program:";
  let heavy =
    let b = B.create () in
    let open B in
    let fmt =
      func "fmt" [ "p0"; "p1" ]
        (seq b
           [
             assign b "t" ((var "p0" *% num 7) +% var "p1");
             return b (var "t" %% num 100);
           ])
    in
    let stmts =
      (* Per-iteration temporaries, as code simplification produces. *)
      List.concat_map
        (fun i ->
          let t n = Printf.sprintf "%s%d" n i in
          [
            assign b (t "a") (num i +% num 1);
            assign b (t "bb") (var (t "a") *% num 3);
            assign b (t "c") (var (t "bb") -% num 2);
            assign b (t "out") (call "fmt" [ var (t "c"); num i ]);
            (* The temporaries die inside the chain; only [out] escapes. *)
            if_ b
              ((num i %% num 2) =% num 0)
              (assign b (t "alt") (var (t "out") +% num 5))
              (assign b (t "alt") (num 0));
          ])
        (List.init 10 Fun.id)
    in
    (* An initial query keeps main persistent, so SC lazifies it but
       compiles the [fmt] helper strictly. *)
    let auth =
      assign b "auth"
        (field (index (read (str "SELECT COUNT(*) AS n FROM kv")) (num 0)) "n")
    in
    B.program [ fmt ]
      (seq b ((auth :: stmts) @ [ print b (var "out3"); print b (var "out7") ]))
  in
  List.iter
    (fun (label, opts) ->
      let clock, _, conn = fresh () in
      let store = Sloth_core.Query_store.create conn in
      Runtime.set_clock (Some clock);
      Runtime.reset ();
      ignore (Lazy_eval.run ~opts heavy store);
      Runtime.set_clock None;
      Printf.printf "  %-10s thunks allocated: %4d   virtual time: %6.3f ms\n"
        label (Runtime.allocs ()) (Vclock.total clock))
    [
      ("noopt", Lazy_eval.no_opts);
      ("SC", { Lazy_eval.sc = true; tc = false; bd = false });
      ("SC+TC", { Lazy_eval.sc = true; tc = true; bd = false });
      ("SC+TC+BD", Lazy_eval.all_opts);
    ]
