(* The issue-tracker workload: loads several tracker pages under both
   strategies and sweeps the network latency, showing how the benefit of
   batching grows with round-trip time (the paper's Fig. 9 effect, on a few
   concrete pages).

   Run with: dune exec examples/issue_tracker.exe *)

module Page = Sloth_web.Page
module Runner = Sloth_harness.Runner

let pages =
  [ "portal_home"; "list_projects"; "view_issue"; "view_issue_activity";
    "list_issues" ]

let () =
  print_endline "Issue tracker pages under original vs Sloth execution";
  print_endline "======================================================";
  let db = Runner.prepare Sloth_workload.App_sig.tracker in
  Printf.printf "\n%-24s %12s %12s %9s %9s\n" "page" "orig ms" "sloth ms"
    "trips" "speedup";
  List.iter
    (fun page ->
      let r = Runner.run_page ~db ~rtt_ms:0.5 Sloth_workload.App_sig.tracker page in
      assert (String.equal r.original.Page.html r.sloth.Page.html);
      Printf.printf "%-24s %12.1f %12.1f %4d->%-4d %8.2fx\n" page
        r.original.Page.total_ms r.sloth.Page.total_ms
        r.original.Page.round_trips r.sloth.Page.round_trips
        (Runner.speedup r))
    pages;
  print_endline "\nLatency sweep on view_issue_activity (dependent 1+N page):";
  Printf.printf "%-12s %12s %12s %9s\n" "RTT" "orig ms" "sloth ms" "speedup";
  List.iter
    (fun rtt_ms ->
      let r =
        Runner.run_page ~db ~rtt_ms Sloth_workload.App_sig.tracker
          "view_issue_activity"
      in
      Printf.printf "%-12s %12.1f %12.1f %8.2fx\n"
        (Printf.sprintf "%.1f ms" rtt_ms)
        r.original.Page.total_ms r.sloth.Page.total_ms (Runner.speedup r))
    [ 0.5; 1.0; 2.0; 5.0; 10.0 ];
  print_endline
    "\nEvery page renders byte-identical HTML under both strategies; only\n\
     the number of round trips (and therefore latency) differs."
