(* The paper's motivating scenario (Fig. 1/2): a medical-records patient
   dashboard.  This example loads the page from the medrec application
   under both strategies and prints the operational details: which queries
   were issued, in how many round trips, and the query store's batches.

   Run with: dune exec examples/patient_dashboard.exe *)

module Page = Sloth_web.Page
module Runner = Sloth_harness.Runner

let () =
  print_endline "Patient dashboard (medrec), original vs Sloth";
  print_endline "=============================================";
  let db = Runner.prepare Sloth_workload.App_sig.medrec in
  let show label (m : Page.metrics) =
    Printf.printf
      "\n[%s]\n  load time     %.1f ms  (app %.1f, db %.1f, network %.1f)\n\
      \  round trips   %d\n  queries       %d\n  max batch     %d\n\
      \  thunks        %d allocated, %d forced\n"
      label m.total_ms m.app_ms m.db_ms m.net_ms m.round_trips m.queries
      m.max_batch m.thunk_allocs m.thunk_forces
  in
  let run =
    Runner.run_page ~db ~rtt_ms:0.5 Sloth_workload.App_sig.medrec
      "patient_dashboard"
  in
  show "original" run.original;
  show "sloth" run.sloth;
  Printf.printf "\n  HTML identical under both strategies: %b\n"
    (String.equal run.original.html run.sloth.html);
  Printf.printf "  speedup: %.2fx  round-trip reduction: %.1fx\n"
    (Runner.speedup run)
    (Runner.round_trip_ratio run);
  (* Show the Fig. 2 style trace on a miniature version: one essential
     query (the patient) followed by three dependent ones that batch. *)
  print_endline "\nQuery store trace (Fig. 2 miniature)";
  print_endline "------------------------------------";
  let clock = Sloth_net.Vclock.create () in
  let link = Sloth_net.Link.create ~rtt_ms:0.5 clock in
  let conn = Sloth_driver.Connection.create db link in
  let store = Sloth_core.Query_store.create conn in
  Sloth_core.Query_store.set_tracer store
    (Some
       (fun event ->
         Format.printf "  %a@." Sloth_core.Query_store.pp_event event));
  let q sql = Sloth_core.Query_store.register_sql store sql in
  let q1 = q "SELECT * FROM patient WHERE id = 1" in
  let rs1 = Sloth_core.Query_store.result store q1 in
  Printf.printf "  (force Q1 -> %d rows)\n"
    (Sloth_storage.Result_set.num_rows rs1);
  let _q2 = q "SELECT * FROM encounter WHERE patient_id = 1" in
  let _q3 = q "SELECT * FROM visit WHERE patient_id = 1" in
  let q4 = q "SELECT COUNT(*) AS n FROM visit WHERE patient_id = 1 AND started > 2023" in
  ignore (Sloth_core.Query_store.result store q4);
  Printf.printf "  batches sent: %d, largest batch: %d\n"
    (Sloth_core.Query_store.batches_sent store)
    (Sloth_core.Query_store.max_batch_size store)
