(* Tests for the virtual clock, link model, and discrete-event simulator. *)

open Sloth_net

let feq = Alcotest.(check (float 1e-9))

let test_vclock () =
  let c = Vclock.create () in
  Vclock.advance c Vclock.App 1.0;
  Vclock.advance c Vclock.Db 2.0;
  Vclock.advance c Vclock.Network 3.5;
  feq "now" 6.5 (Vclock.now c);
  feq "app" 1.0 (Vclock.elapsed c Vclock.App);
  feq "db" 2.0 (Vclock.elapsed c Vclock.Db);
  feq "net" 3.5 (Vclock.elapsed c Vclock.Network);
  feq "total" 6.5 (Vclock.total c);
  Vclock.reset c;
  feq "after reset" 0.0 (Vclock.total c);
  feq "clock monotonic" 6.5 (Vclock.now c)

let test_stats () =
  let s = Stats.create () in
  Stats.record_round_trip s ~queries:1 ~bytes:100;
  Stats.record_round_trip s ~queries:5 ~bytes:200;
  Alcotest.(check int) "round trips" 2 (Stats.round_trips s);
  Alcotest.(check int) "queries" 6 (Stats.queries s);
  Alcotest.(check int) "bytes" 300 (Stats.bytes s);
  Alcotest.(check int) "max batch" 5 (Stats.max_batch s);
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.round_trips s)

let test_link () =
  let c = Vclock.create () in
  let l = Link.create ~rtt_ms:0.5 ~bandwidth_mb_s:100.0 c in
  Link.round_trip l ~queries:1 ~bytes:0;
  feq "pure rtt" 0.5 (Vclock.elapsed c Vclock.Network);
  Link.round_trip l ~queries:1 ~bytes:1_000_000;
  (* 1 MB at 100 MB/s = 10 ms transfer *)
  feq "rtt + transfer" (0.5 +. 0.5 +. 10.0) (Vclock.elapsed c Vclock.Network);
  Link.set_rtt_ms l 10.0;
  Link.round_trip l ~queries:1 ~bytes:0;
  feq "rtt raised" 21.0 (Vclock.elapsed c Vclock.Network);
  Alcotest.(check int) "stats" 3 (Stats.round_trips (Link.stats l))

let test_des_ordering () =
  let sim = Des.create () in
  let log = ref [] in
  Des.at sim 5.0 (fun () -> log := "b" :: !log);
  Des.at sim 1.0 (fun () -> log := "a" :: !log);
  Des.at sim 5.0 (fun () -> log := "c" :: !log);
  Des.run sim ~until:10.0;
  Alcotest.(check (list string)) "timestamp then insertion order"
    [ "a"; "b"; "c" ] (List.rev !log);
  feq "clock at last event" 5.0 (Des.now sim)

let test_des_until () =
  let sim = Des.create () in
  let hits = ref 0 in
  let rec tick () =
    incr hits;
    Des.delay sim 1.0 tick
  in
  Des.at sim 0.0 tick;
  Des.run sim ~until:10.5;
  Alcotest.(check int) "ticks until cutoff" 11 !hits

let test_resource_fcfs () =
  let sim = Des.create () in
  let r = Des.Resource.create sim ~servers:1 in
  let finished = ref [] in
  let job name dur =
    Des.Resource.with_service r dur (fun () ->
        finished := (name, Des.now sim) :: !finished)
  in
  Des.at sim 0.0 (fun () -> job "j1" 2.0);
  Des.at sim 0.0 (fun () -> job "j2" 3.0);
  Des.at sim 0.0 (fun () -> job "j3" 1.0);
  Des.run sim ~until:100.0;
  let order = List.rev !finished in
  Alcotest.(check (list string)) "FCFS order" [ "j1"; "j2"; "j3" ]
    (List.map fst order);
  (* j1: 0-2, j2: 2-5, j3: 5-6 *)
  feq "j1 end" 2.0 (List.assoc "j1" order);
  feq "j2 end" 5.0 (List.assoc "j2" order);
  feq "j3 end" 6.0 (List.assoc "j3" order)

let test_resource_parallel () =
  let sim = Des.create () in
  let r = Des.Resource.create sim ~servers:2 in
  let finished = ref [] in
  let job name dur =
    Des.Resource.with_service r dur (fun () ->
        finished := (name, Des.now sim) :: !finished)
  in
  Des.at sim 0.0 (fun () -> job "j1" 2.0);
  Des.at sim 0.0 (fun () -> job "j2" 2.0);
  Des.at sim 0.0 (fun () -> job "j3" 2.0);
  Des.run sim ~until:100.0;
  let order = List.rev !finished in
  (* two run in parallel (end at 2), third queues (end at 4) *)
  feq "j1 end" 2.0 (List.assoc "j1" order);
  feq "j2 end" 2.0 (List.assoc "j2" order);
  feq "j3 end" 4.0 (List.assoc "j3" order)

let test_resource_utilization () =
  let sim = Des.create () in
  let r = Des.Resource.create sim ~servers:1 in
  Des.at sim 0.0 (fun () -> Des.Resource.with_service r 5.0 ignore);
  Des.run sim ~until:100.0;
  feq "busy time" 5.0 (Des.Resource.busy_time r)

let prop_heap_order =
  QCheck.Test.make ~count:200 ~name:"events fire in timestamp order"
    QCheck.(list_of_size (Gen.int_range 0 100) (float_bound_exclusive 1000.0))
    (fun times ->
      let sim = Des.create () in
      let seen = ref [] in
      List.iter (fun t -> Des.at sim t (fun () -> seen := t :: !seen)) times;
      Des.run sim ~until:infinity;
      let seen = List.rev !seen in
      List.length seen = List.length times
      && seen = List.sort compare times
         (* stable sort matches because equal keys keep insertion order *))

let () =
  Alcotest.run "net"
    [
      ( "vclock",
        [
          Alcotest.test_case "accounting" `Quick test_vclock;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "link" `Quick test_link;
        ] );
      ( "des",
        [
          Alcotest.test_case "ordering" `Quick test_des_ordering;
          Alcotest.test_case "until" `Quick test_des_until;
          Alcotest.test_case "fcfs resource" `Quick test_resource_fcfs;
          Alcotest.test_case "parallel resource" `Quick test_resource_parallel;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_heap_order ] );
    ]
