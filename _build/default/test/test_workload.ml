(* Integration tests over the evaluation workloads: every page of both
   applications must render identical HTML under both strategies while
   reducing round trips; the TPC programs must behave identically under
   both kernel evaluators; the data generator must respect its specs. *)

module Db = Sloth_storage.Database
module Page = Sloth_web.Page
module Runner = Sloth_harness.Runner

let tracker_runs =
  lazy (Runner.run_app ~rtt_ms:0.5 Sloth_workload.App_sig.tracker)

let medrec_runs =
  lazy (Runner.run_app ~rtt_ms:0.5 Sloth_workload.App_sig.medrec)

let check_app name runs expected_pages =
  let runs = Lazy.force runs in
  Alcotest.(check int)
    (name ^ " page count (as in the paper)")
    expected_pages (List.length runs);
  List.iter
    (fun (r : Runner.page_run) ->
      if not (String.equal r.original.Page.html r.sloth.Page.html) then
        Alcotest.failf "%s/%s: HTML differs between strategies" name r.page;
      if r.sloth.Page.round_trips > r.original.Page.round_trips then
        Alcotest.failf "%s/%s: Sloth used more round trips (%d > %d)" name
          r.page r.sloth.Page.round_trips r.original.Page.round_trips;
      if r.sloth.Page.round_trips <= 0 then
        Alcotest.failf "%s/%s: no round trips recorded" name r.page)
    runs

let test_tracker_pages () =
  check_app "tracker" tracker_runs 38

let test_medrec_pages () =
  check_app "medrec" medrec_runs 112

let test_batching_happens () =
  (* Every page must batch something: max batch > 1 somewhere, and the
     medians must show a real reduction. *)
  let runs = Lazy.force medrec_runs in
  let batched =
    List.filter (fun (r : Runner.page_run) -> r.sloth.Page.max_batch > 1) runs
  in
  Alcotest.(check bool) "most pages batch queries" true
    (List.length batched > List.length runs * 9 / 10);
  let speedups = List.map Runner.speedup runs in
  let median = Sloth_harness.Cdf.median speedups in
  Alcotest.(check bool)
    (Printf.sprintf "median speedup %.2f within the paper's band" median)
    true
    (median > 1.05 && median < 1.6)

let test_queries_ratio_sides () =
  (* Some pages save queries (eager-fetch waste), and at least one page has
     Sloth issuing as many or more (partial rendering) — both phenomena the
     paper reports. *)
  let runs = Lazy.force medrec_runs in
  let savers =
    List.filter (fun r -> Runner.query_ratio r > 1.05) runs
  in
  let non_savers =
    List.filter (fun r -> Runner.query_ratio r <= 1.0) runs
  in
  Alcotest.(check bool) "some pages avoid queries" true (List.length savers > 10);
  Alcotest.(check bool) "some pages do not" true (List.length non_savers > 10)

let test_datagen_counts () =
  let db = Db.create () in
  Sloth_workload.Medrec.populate ~scale:1 db;
  List.iter
    (fun (spec : Sloth_workload.Table_spec.t) ->
      Alcotest.(check int)
        (spec.table ^ " row count")
        (spec.rows_at 1)
        (Db.row_count db spec.table))
    Sloth_workload.Medrec.specs

let test_datagen_determinism () =
  let dump db =
    List.map
      (fun t ->
        ( t,
          Sloth_storage.Result_set.rows
            (Db.query db (Printf.sprintf "SELECT * FROM %s ORDER BY id" t)) ))
      (Db.table_names db)
  in
  let db1 = Db.create () in
  Sloth_workload.Tracker.populate db1;
  let db2 = Db.create () in
  Sloth_workload.Tracker.populate db2;
  Alcotest.(check bool) "two populations identical" true (dump db1 = dump db2)

let test_fk_integrity () =
  let db = Db.create () in
  Sloth_workload.Tracker.populate db;
  (* Every issue's project exists. *)
  let rs =
    Db.query db
      "SELECT COUNT(*) AS n FROM issue JOIN project ON project.id = \
       issue.project_id"
  in
  let joined =
    match Sloth_storage.Result_set.scalar rs with
    | Some (Sloth_storage.Value.Int n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "all issues join a project" (Db.row_count db "issue")
    joined

(* --- TPC programs under both evaluators ---------------------------------- *)

let run_tpc populate programs =
  let fresh () =
    let db = Db.create () in
    populate db;
    let clock = Sloth_net.Vclock.create () in
    let link = Sloth_net.Link.create ~rtt_ms:0.5 clock in
    Sloth_driver.Connection.create db link
  in
  let conn = fresh () in
  let std =
    List.concat_map
      (fun p -> (Sloth_kernel.Standard.run p conn).output)
      programs
  in
  let conn = fresh () in
  let store = Sloth_core.Query_store.create conn in
  let lzy =
    List.concat_map
      (fun p ->
        let r = Sloth_kernel.Lazy_eval.run p store in
        Sloth_core.Query_store.flush store;
        r.output)
      programs
  in
  (std, lzy)

let test_tpcc_equivalence () =
  List.iter
    (fun (name, make) ->
      let programs = List.init 10 (fun seed -> make ~seed:(seed + 1)) in
      let std, lzy =
        run_tpc (Sloth_workload.Tpcc.populate ~scale:1) programs
      in
      Alcotest.(check (list string)) (name ^ " output") std lzy)
    Sloth_workload.Tpcc.transactions

let test_tpcw_equivalence () =
  List.iter
    (fun (name, interactions) ->
      let programs = List.mapi (fun i make -> make ~seed:(i + 1)) interactions in
      let std, lzy = run_tpc (Sloth_workload.Tpcw.populate ~scale:1) programs in
      Alcotest.(check (list string)) (name ^ " output") std lzy)
    Sloth_workload.Tpcw.mixes

let () =
  Alcotest.run "workload"
    [
      ( "pages",
        [
          Alcotest.test_case "tracker: 38 pages, identical html" `Slow
            test_tracker_pages;
          Alcotest.test_case "medrec: 112 pages, identical html" `Slow
            test_medrec_pages;
          Alcotest.test_case "batching happens" `Slow test_batching_happens;
          Alcotest.test_case "query ratios both sides" `Slow
            test_queries_ratio_sides;
        ] );
      ( "datagen",
        [
          Alcotest.test_case "row counts" `Quick test_datagen_counts;
          Alcotest.test_case "determinism" `Quick test_datagen_determinism;
          Alcotest.test_case "fk integrity" `Quick test_fk_integrity;
        ] );
      ( "tpc",
        [
          Alcotest.test_case "tpcc std = lazy" `Slow test_tpcc_equivalence;
          Alcotest.test_case "tpcw std = lazy" `Slow test_tpcw_equivalence;
        ] );
    ]
