(* Tests for the ORM layer: row hydration, repositories under both
   strategies, session caching, fetch strategies, and writes. *)

module Db = Sloth_storage.Database
module Value = Sloth_storage.Value
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Stats = Sloth_net.Stats
module Conn = Sloth_driver.Connection
open Sloth_orm

type author = { id : int; name : string; rating : int option }

let author_desc : author Desc.t =
  {
    Desc.table = "author";
    key = "id";
    columns =
      [ ("id", Sloth_sql.Ast.T_int); ("name", Sloth_sql.Ast.T_text);
        ("rating", Sloth_sql.Ast.T_int) ];
    assocs =
      [
        {
          Desc.assoc_name = "books";
          child_table = "book";
          fk_column = "author_id";
          fetch = Desc.Eager_fetch;
        };
      ];
    of_row =
      (fun row ->
        { id = Row.int row "id"; name = Row.str row "name";
          rating = Row.int_opt row "rating" });
    to_row =
      (fun a ->
        [
          ("id", Value.Int a.id);
          ("name", Value.Text a.name);
          ("rating",
           match a.rating with Some r -> Value.Int r | None -> Value.Null);
        ]);
  }

module Author = struct
  type t = author

  let desc = author_desc
end

let setup () =
  let db = Db.create () in
  ignore
    (Db.exec_sql db
       "CREATE TABLE author (id INT NOT NULL, name TEXT NOT NULL, rating \
        INT, PRIMARY KEY (id))");
  ignore
    (Db.exec_sql db
       "CREATE TABLE book (id INT NOT NULL, author_id INT NOT NULL, title \
        TEXT NOT NULL, PRIMARY KEY (id))");
  Db.create_index db ~table:"book" ~column:"author_id";
  for i = 1 to 6 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf
            "INSERT INTO author (id, name, rating) VALUES (%d, 'author%d', %s)"
            i i
            (if i mod 2 = 0 then string_of_int (i * 10) else "NULL")))
  done;
  for i = 1 to 12 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf
            "INSERT INTO book (id, author_id, title) VALUES (%d, %d, 'book%d')"
            i ((i mod 6) + 1) i))
  done;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  (db, link, Conn.create db link)

let eager conn =
  (module Sloth_core.Exec.Eager (struct
    let conn = conn
  end) : Sloth_core.Exec.S)

let lazy_x conn =
  let store = Sloth_core.Query_store.create conn in
  (module Sloth_core.Exec.Lazy (struct
    let store = store
  end) : Sloth_core.Exec.S)

(* --- rows --------------------------------------------------------------- *)

let test_row_access () =
  let rs =
    Sloth_storage.Result_set.create ~columns:[ "a"; "b"; "c" ]
      [ [| Value.Int 1; Value.Text "x"; Value.Null |] ]
  in
  match Row.of_result_set rs with
  | [ row ] ->
      Alcotest.(check int) "int" 1 (Row.int row "a");
      Alcotest.(check string) "str" "x" (Row.str row "b");
      Alcotest.(check bool) "null opt" true (Row.int_opt row "c" = None);
      (match Row.int row "b" with
      | exception Row.Hydration_error _ -> ()
      | _ -> Alcotest.fail "expected type error");
      (match Row.value row "zz" with
      | exception Row.Hydration_error _ -> ()
      | _ -> Alcotest.fail "expected missing-column error")
  | _ -> Alcotest.fail "expected one row"

(* --- repository, eager strategy ----------------------------------------- *)

let test_find_and_hydrate () =
  let _db, _link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  match X.get (R.find 2) with
  | Some a ->
      Alcotest.(check string) "name" "author2" a.name;
      Alcotest.(check bool) "rating" true (a.rating = Some 20)
  | None -> Alcotest.fail "author 2 should exist"

let test_find_missing () =
  let _db, _link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  Alcotest.(check bool) "missing" true (X.get (R.find 999) = None);
  match X.get (R.find_exn 999) with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_session_cache () =
  let _db, link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  Stats.reset (Link.stats link);
  ignore (X.get (R.find 1));
  let first = Stats.queries (Link.stats link) in
  ignore (X.get (R.find 1));
  Alcotest.(check int) "second find served from cache" first
    (Stats.queries (Link.stats link))

let test_eager_fetch_prefetches () =
  (* With the eager strategy, loading an author also loads its books. *)
  let _db, link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  Stats.reset (Link.stats link);
  ignore (X.get (R.find 1));
  Alcotest.(check int) "find + eager association" 2
    (Stats.queries (Link.stats link));
  (* The association access is then free. *)
  ignore (X.get (R.assoc_rows "books" 1));
  Alcotest.(check int) "assoc served from cache" 2
    (Stats.queries (Link.stats link))

let test_sloth_skips_eager_fetch () =
  (* Under Sloth nothing is prefetched; unused associations never execute. *)
  let _db, link, conn = setup () in
  let module X = (val lazy_x conn) in
  let module R = Repo.Make (X) (Author) in
  Stats.reset (Link.stats link);
  (match X.get (R.find 1) with
  | Some a -> Alcotest.(check string) "hydrates" "author1" a.name
  | None -> Alcotest.fail "expected author");
  Alcotest.(check int) "only the entity query executed" 1
    (Stats.queries (Link.stats link))

let test_where_order_limit () =
  let _db, _link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  let open Sloth_sql.Ast in
  let rated = X.get (R.where (Is_null { e = Col (None, "rating"); negated = true })) in
  Alcotest.(check int) "3 rated authors" 3 (List.length rated);
  let top = X.get (R.all ~order_by:"name" ~limit:2 ()) in
  Alcotest.(check int) "limit" 2 (List.length top);
  Alcotest.(check string) "order" "author1" (List.hd top).name

let test_count_and_find_by () =
  let _db, _link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  Alcotest.(check int) "count" 6 (X.get (R.count ()));
  let hits = X.get (R.find_by "name" (Value.Text "author3")) in
  Alcotest.(check int) "find_by" 1 (List.length hits)

let test_insert_update_delete () =
  let db, _link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  R.insert { id = 50; name = "newbie"; rating = None };
  Alcotest.(check int) "inserted" 7 (Db.row_count db "author");
  Alcotest.(check int) "updated" 1
    (R.update_fields 50 [ ("rating", Value.Int 5) ]);
  (match X.get (R.find 50) with
  | Some a -> Alcotest.(check bool) "rating set" true (a.rating = Some 5)
  | None -> Alcotest.fail "expected new author");
  (* The find cache now holds id 50; delete still goes through. *)
  Alcotest.(check int) "deleted" 1 (R.delete 50);
  Alcotest.(check int) "gone" 6 (Db.row_count db "author")

let test_generic_entity () =
  let _db, _link, conn = setup () in
  let module X = (val eager conn) in
  let ent =
    Generic.entity ~table:"book"
      ~columns:
        [ ("id", Sloth_sql.Ast.T_int); ("author_id", Sloth_sql.Ast.T_int);
          ("title", Sloth_sql.Ast.T_text) ]
      ()
  in
  let module R = Repo.Make (X) ((val ent)) in
  match X.get (R.find 3) with
  | Some row -> Alcotest.(check string) "title" "book3" (Row.str row "title")
  | None -> Alcotest.fail "book 3 should exist"

let test_hydrate_roundtrip () =
  (* to_row then re-insert then of_row gives the same entity. *)
  let db, _link, conn = setup () in
  let module X = (val eager conn) in
  let module R = Repo.Make (X) (Author) in
  let original = Option.get (X.get (R.find 4)) in
  ignore (Db.exec_sql db "DELETE FROM author WHERE id = 4");
  R.insert original;
  (* A fresh repo avoids the session cache. *)
  let module R2 = Repo.Make (X) (Author) in
  let back = Option.get (X.get (R2.find 4)) in
  Alcotest.(check bool) "roundtrip" true (original = back)

let prop_lazy_eager_agree =
  QCheck.Test.make ~count:40 ~name:"repositories agree across strategies"
    QCheck.(small_list (int_range 1 8))
    (fun ids ->
      let _db, _link, conn = setup () in
      let module E = (val eager conn) in
      let module L = (val lazy_x conn) in
      let module RE = Repo.Make (E) (Author) in
      let module RL = Repo.Make (L) (Author) in
      List.for_all
        (fun id -> E.get (RE.find id) = L.get (RL.find id))
        ids)

let () =
  Alcotest.run "orm"
    [
      ("row", [ Alcotest.test_case "access" `Quick test_row_access ]);
      ( "repository",
        [
          Alcotest.test_case "find/hydrate" `Quick test_find_and_hydrate;
          Alcotest.test_case "missing" `Quick test_find_missing;
          Alcotest.test_case "session cache" `Quick test_session_cache;
          Alcotest.test_case "eager prefetch" `Quick test_eager_fetch_prefetches;
          Alcotest.test_case "sloth skips prefetch" `Quick
            test_sloth_skips_eager_fetch;
          Alcotest.test_case "where/order/limit" `Quick test_where_order_limit;
          Alcotest.test_case "count/find_by" `Quick test_count_and_find_by;
          Alcotest.test_case "insert/update/delete" `Quick
            test_insert_update_delete;
          Alcotest.test_case "generic entity" `Quick test_generic_entity;
          Alcotest.test_case "hydrate roundtrip" `Quick test_hydrate_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_lazy_eager_agree ] );
    ]
