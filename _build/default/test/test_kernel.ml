(* Tests for the kernel language: both evaluators, the static analyses, the
   optimizations, and the paper's soundness theorem as a qcheck property. *)

open Sloth_kernel
module B = Builder
module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Vclock = Sloth_net.Vclock
module Stats = Sloth_net.Stats
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection
module Store = Sloth_core.Query_store
module Runtime = Sloth_core.Runtime

let fresh_conn () =
  let db = Db.create () in
  Generator.setup_schema db;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  (db, link, Conn.create db link)

let dump_db db =
  Rs.rows (Db.query db "SELECT * FROM kv ORDER BY k")
  |> List.map (fun r ->
         Array.to_list (Array.map Sloth_storage.Value.to_string r))

let run_standard prog =
  let db, link, conn = fresh_conn () in
  let r = Standard.run prog conn in
  (r, db, link)

let run_lazy ?opts prog =
  let db, link, conn = fresh_conn () in
  let store = Store.create conn in
  let r = Lazy_eval.run ?opts prog store in
  (r, db, link, store)

(* The soundness theorem: after forcing all thunks, environments, heaps,
   database and output agree with the standard run. *)
let check_equiv ?(opts = Lazy_eval.no_opts) prog =
  let std, db_s, _ = run_standard prog in
  let lzy, db_l, _, _ = run_lazy ~opts prog in
  (* Deep-force everything reachable from the lazy environment.  A
     projection thunk for a variable that a deferred, not-taken branch
     would have defined legitimately reports "unbound": under standard
     semantics the variable simply does not exist on this path (and no
     program code reads it, or execution itself would have failed), so the
     binding is dropped rather than compared. *)
  Hashtbl.iter
    (fun x v ->
      match Heap.deep_force lzy.heap v with
      | v -> Hashtbl.replace lzy.env x v
      | exception Kvalue.Runtime_error msg
        when String.length msg >= 7 && String.sub msg 0 7 = "unbound" ->
          Hashtbl.remove lzy.env x)
    (Hashtbl.copy lzy.env);
  if std.output <> lzy.output then
    QCheck.Test.fail_reportf "output differs:\nstd: %s\nlzy: %s"
      (String.concat " | " std.output)
      (String.concat " | " lzy.output);
  if dump_db db_s <> dump_db db_l then
    QCheck.Test.fail_reportf "database state differs";
  (* Every lazy binding must match the standard one. *)
  Hashtbl.iter
    (fun x lv ->
      match Hashtbl.find_opt std.env x with
      | None -> QCheck.Test.fail_reportf "lazy env has extra variable %s" x
      | Some sv ->
          if not (Heap.iso std.heap sv lzy.heap lv) then
            QCheck.Test.fail_reportf "variable %s differs" x)
    lzy.env;
  (* Without optimizations no binding may be dropped either. *)
  if opts = Lazy_eval.no_opts then
    Hashtbl.iter
      (fun x _ ->
        if not (Hashtbl.mem lzy.env x) then
          QCheck.Test.fail_reportf "lazy env dropped variable %s" x)
      std.env;
  true

(* --- hand-written programs --------------------------------------------- *)

(* The paper's Fig. 1/2 pattern: one essential query whose result feeds
   three more, which are stored (not consumed) and only rendered at the
   end. *)
let dashboard_program () =
  let b = B.create () in
  let open B in
  let q sel = read (str sel) in
  let main =
    seq b
      [
        assign b "p" (q "SELECT v AS v, n AS n FROM kv WHERE k = 1");
        (* Forces p: the patient id is needed to build the next queries. *)
        assign b "pid" (field (index (var "p") (num 0)) "n");
        assign b "enc"
          (read (str "SELECT COUNT(*) AS n FROM kv WHERE n > " +% var "pid"));
        assign b "vis"
          (read
             (str "SELECT COUNT(*) AS n FROM kv WHERE n > "
             +% (var "pid" +% num 1)));
        assign b "act"
          (read
             (str "SELECT COUNT(*) AS n FROM kv WHERE n > "
             +% (var "pid" +% num 2)));
        (* Rendering the model forces the remaining three as one batch. *)
        print b (var "enc");
        print b (var "vis");
        print b (var "act");
      ]
  in
  B.program [] main

let test_dashboard_round_trips () =
  let prog = dashboard_program () in
  let std, _, link_s = run_standard prog in
  let lzy, _, link_l, store = run_lazy ~opts:Lazy_eval.no_opts prog in
  Alcotest.(check (list string)) "same output" std.output lzy.output;
  Alcotest.(check int) "standard: one trip per query" 4
    (Stats.round_trips (Link.stats link_s));
  Alcotest.(check int) "lazy: two trips" 2
    (Stats.round_trips (Link.stats link_l));
  Alcotest.(check int) "lazy: batch of three" 3 (Store.max_batch_size store)

let test_write_flush_order () =
  (* A read registered before a write must observe the pre-write database
     even though its result is consumed after the write. *)
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "before"
          (read (str "SELECT n AS n FROM kv WHERE k = 1"));
        write b (str "UPDATE kv SET n = 99 WHERE k = 1");
        assign b "after" (read (str "SELECT n AS n FROM kv WHERE k = 1"));
        print b (field (index (var "before") (num 0)) "n");
        print b (field (index (var "after") (num 0)) "n");
      ]
  in
  let prog = B.program [] main in
  let std, _, _ = run_standard prog in
  let lzy, _, _, _ = run_lazy prog in
  Alcotest.(check (list string)) "lazy output equals standard" std.output
    lzy.output;
  Alcotest.(check (list string)) "read-before-write sees old value"
    [ "3"; "99" ] std.output

let test_conditional_query () =
  (* Queries under a branch only execute when the branch is taken — the
     case static prefetching cannot handle (Sec. 1). *)
  let b = B.create () in
  let open B in
  let prog taken =
    let main =
      seq b
        [
          assign b "x" (num (if taken then 1 else 0));
          if_ b
            (var "x" =% num 1)
            (assign b "r"
               (read (str "SELECT COUNT(*) AS n FROM kv WHERE n > 1")))
            (assign b "r" (num 0));
          print b (var "x");
        ]
    in
    B.program [] main
  in
  let _, _, _, store_taken = run_lazy (prog true) in
  Alcotest.(check int) "query registered when taken" 1
    (Store.registered store_taken)

let test_unconsumed_query_never_runs () =
  (* A registered query whose result is never needed is never executed —
     "they might not be executed at all" (Sec. 2). *)
  let prog = dashboard_program () in
  let b = B.create () in
  let open B in
  (* Same program but without the prints: nothing forces Q2-Q4. *)
  let main =
    seq b
      [
        assign b "p" (read (str "SELECT v AS v, n AS n FROM kv WHERE k = 1"));
        assign b "pid" (field (index (var "p") (num 0)) "n");
        assign b "enc"
          (read (str "SELECT COUNT(*) AS n FROM kv WHERE n > " +% var "pid"));
      ]
  in
  ignore prog;
  let silent = B.program [] main in
  let _, _, link, store = run_lazy silent in
  Alcotest.(check int) "only the forced query was shipped" 1
    (Stats.queries (Link.stats link));
  Alcotest.(check int) "second query stayed pending" 1 (Store.pending store)

(* --- analyses ----------------------------------------------------------- *)

let analysis_fixture () =
  let b = B.create () in
  let open B in
  let leaf_pure = func "leaf_pure" [ "p0"; "p1" ] (return b (var "p0" +% num 1)) in
  let uses_query =
    func "uses_query" [ "p0"; "p1" ]
      (seq b
         [
           assign b "r" (read (str "SELECT COUNT(*) AS n FROM kv"));
           return b (field (index (var "r") (num 0)) "n");
         ])
  in
  let calls_query =
    func "calls_query" [ "p0"; "p1" ]
      (return b (call "uses_query" [ var "p0"; var "p1" ]))
  in
  let pure_caller =
    func "pure_caller" [ "p0"; "p1" ]
      (return b (call "leaf_pure" [ var "p0"; num 2 ]))
  in
  let printer =
    func "printer" [ "p0"; "p1" ]
      (seq b [ print b (var "p0"); return b (num 0) ])
  in
  let ext = func ~external_fn:true "ext" [ "p0"; "p1" ] (return b (var "p0")) in
  let main = seq b [ assign b "x" (call "calls_query" [ num 1; num 2 ]) ] in
  (b, B.program [ leaf_pure; uses_query; calls_query; pure_caller; printer; ext ] main)

let test_persistence_analysis () =
  let _, prog = analysis_fixture () in
  let a = Analysis.analyze prog in
  Alcotest.(check bool) "leaf_pure not persistent" false
    (Analysis.persistent a "leaf_pure");
  Alcotest.(check bool) "uses_query persistent" true
    (Analysis.persistent a "uses_query");
  Alcotest.(check bool) "calls_query persistent (transitive)" true
    (Analysis.persistent a "calls_query");
  Alcotest.(check bool) "pure_caller not persistent" false
    (Analysis.persistent a "pure_caller");
  Alcotest.(check bool) "unknown treated as persistent" true
    (Analysis.persistent a "no_such_fn");
  Alcotest.(check bool) "main is persistent" true (Analysis.main_persistent a);
  let p, np = Analysis.persistent_count a in
  Alcotest.(check (pair int int)) "counts" (2, 4) (p, np)

let test_purity_analysis () =
  let _, prog = analysis_fixture () in
  let a = Analysis.analyze prog in
  Alcotest.(check bool) "leaf_pure pure" true (Analysis.pure a "leaf_pure");
  Alcotest.(check bool) "pure_caller pure" true (Analysis.pure a "pure_caller");
  Alcotest.(check bool) "printer impure" false (Analysis.pure a "printer");
  Alcotest.(check bool) "external impure" false (Analysis.pure a "ext");
  Alcotest.(check bool) "query reader not deferrable-pure" false
    (Analysis.pure a "uses_query")

let test_deferrable_and_groups () =
  let b = B.create () in
  let open B in
  (* e = a + b; f = e + c; g = f + d — the paper's coalescing example. *)
  let s1 = assign b "e" (var "a" +% var "b") in
  let s2 = assign b "f" (var "e" +% var "c") in
  let s3 = assign b "g" (var "f" +% var "d") in
  let body =
    seq b
      [
        assign b "a" (num 1);
        assign b "b" (num 2);
        assign b "c" (num 3);
        assign b "d" (num 4);
        s1;
        s2;
        s3;
        print b (var "g");
      ]
  in
  let prog = B.program [] body in
  let a = Analysis.analyze prog in
  Alcotest.(check bool) "assign deferrable" true (Analysis.deferrable a s1);
  (* The whole prologue + computation run coalesces into one group whose
     only outputs are the variables used later (g, plus the operands read
     inside the group are inputs, not outputs). *)
  (match Analysis.group_of_leader a (List.hd (Ast.flatten body)).Ast.sid with
  | Some g ->
      Alcotest.(check (list string)) "only g escapes" [ "g" ] g.outputs
  | None -> Alcotest.fail "expected a coalescing group");
  Alcotest.(check bool) "print not groupable" false
    (Analysis.in_group a (List.nth (Ast.flatten body) 7).Ast.sid)

let test_branch_deferral_defers_flush () =
  (* With BD, evaluating a deferrable branch must not force the pending
     query that feeds its condition. *)
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "r" (read (str "SELECT COUNT(*) AS n FROM kv WHERE n > 1"));
        assign b "c" (num 1);
        if_ b (var "c" =% num 1)
          (assign b "y" (num 10))
          (assign b "y" (num 20));
        assign b "z" (num 5);
      ]
  in
  let prog = B.program [] main in
  let _, _, _, store_bd =
    run_lazy ~opts:{ Lazy_eval.sc = false; tc = false; bd = true } prog
  in
  Alcotest.(check int) "query still pending with BD" 1 (Store.pending store_bd)

let test_tc_reduces_allocations () =
  let b = B.create () in
  let open B in
  (* A pure computation chain with plenty of operation nodes. *)
  let stmts =
    List.init 20 (fun i ->
        assign b
          (Printf.sprintf "t%d" i)
          (num i +% (num 2 *% num 3) +% (num 4 -% num 1)))
  in
  let main = seq b (stmts @ [ print b (var "t19") ]) in
  let prog = B.program [] main in
  Runtime.reset ();
  let _ = run_lazy ~opts:Lazy_eval.no_opts prog in
  let noopt_allocs = Runtime.allocs () in
  Runtime.reset ();
  let _ = run_lazy ~opts:{ Lazy_eval.sc = false; tc = true; bd = false } prog in
  let tc_allocs = Runtime.allocs () in
  Runtime.reset ();
  Alcotest.(check bool)
    (Printf.sprintf "TC allocates less (%d < %d)" tc_allocs noopt_allocs)
    true
    (tc_allocs < noopt_allocs)

let test_sc_skips_nonpersistent () =
  let b = B.create () in
  let open B in
  let helper =
    func "helper" [ "p0"; "p1" ]
      (seq b
         [
           assign b "acc" (var "p0" +% var "p1");
           assign b "acc" (var "acc" *% num 2);
           return b (var "acc");
         ])
  in
  let main =
    seq b
      [
        assign b "x" (call "helper" [ num 3; num 4 ]);
        print b (var "x");
      ]
  in
  let prog = B.program [ helper ] main in
  Runtime.reset ();
  let r1, _, _, _ = run_lazy ~opts:Lazy_eval.no_opts prog in
  let without_sc = Runtime.allocs () in
  Runtime.reset ();
  let r2, _, _, _ =
    run_lazy ~opts:{ Lazy_eval.sc = true; tc = false; bd = false } prog
  in
  let with_sc = Runtime.allocs () in
  Runtime.reset ();
  Alcotest.(check (list string)) "same output" r1.output r2.output;
  Alcotest.(check (list string)) "value" [ "14" ] r2.output;
  Alcotest.(check bool)
    (Printf.sprintf "SC allocates less (%d < %d)" with_sc without_sc)
    true (with_sc < without_sc)

(* --- interpreters on fixed programs ------------------------------------- *)

let test_loop_and_break () =
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "sum" (num 0);
        for_range b "i" ~from:(num 0) ~below:(num 5) (fun i ->
            assign b "sum" (var "sum" +% i));
        print b (var "sum");
      ]
  in
  let prog = B.program [] main in
  let std, _, _ = run_standard prog in
  Alcotest.(check (list string)) "sum 0..4" [ "10" ] std.output;
  let lzy, _, _, _ = run_lazy prog in
  Alcotest.(check (list string)) "lazy agrees" [ "10" ] lzy.output

let test_records_and_arrays () =
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "r" (record [ ("a", num 1); ("b", str "x") ]);
        set_field b (var "r") "a" (num 42);
        assign b "arr" (array [ num 1; num 2; num 3 ]);
        set_index b (var "arr") (num 1) (num 9);
        print b (field (var "r") "a");
        print b (index (var "arr") (num 1));
        print b (len (var "arr"));
      ]
  in
  let prog = B.program [] main in
  let std, _, _ = run_standard prog in
  Alcotest.(check (list string)) "standard" [ "42"; "9"; "3" ] std.output;
  let lzy, _, _, _ = run_lazy prog in
  Alcotest.(check (list string)) "lazy" [ "42"; "9"; "3" ] lzy.output

let test_mutation_vs_laziness () =
  (* The subtle case: a value computed from a field, the field mutated, the
     value consumed after the mutation.  Must see the pre-mutation value. *)
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "r" (record [ ("a", num 1); ("b", str "x") ]);
        assign b "y" (field (var "r") "a" +% num 100);
        set_field b (var "r") "a" (num 2);
        print b (var "y");
        print b (field (var "r") "a");
      ]
  in
  let prog = B.program [] main in
  let std, _, _ = run_standard prog in
  let lzy, _, _, _ = run_lazy prog in
  Alcotest.(check (list string)) "standard sees old value" [ "101"; "2" ]
    std.output;
  Alcotest.(check (list string)) "lazy agrees" std.output lzy.output

let test_fuel () =
  let b = B.create () in
  let open B in
  let main = while_ b (assign b "x" (num 1)) in
  let prog = B.program [] main in
  let db = Db.create () in
  Generator.setup_schema db;
  let conn = Conn.create db (Link.create (Vclock.create ())) in
  (match Standard.run ~fuel:1000 prog conn with
  | exception Standard.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion");
  let store = Store.create conn in
  match Lazy_eval.run ~fuel:1000 prog store with
  | exception Lazy_eval.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion (lazy)"

let test_exception_timing_limitation () =
  (* The paper's documented limitation (Sec. 3.7): under lazy evaluation an
     exception surfaces when the thunk is forced — later than in the
     original program, or never if the result is never needed. *)
  let b = B.create () in
  let open B in
  let main =
    seq b
      [
        assign b "x" (num 1 /% num 0);
        print b (str "reached");
      ]
  in
  let prog = B.program [] main in
  (* Standard: the division faults before any output. *)
  (match run_standard prog with
  | exception Kvalue.Runtime_error _ -> ()
  | _ -> Alcotest.fail "standard evaluation should fault");
  (* Lazy (without SC — selective compilation would run this query-free
     main strictly, faulting like the original): x is never consumed, so
     the fault never fires. *)
  let lzy, _, _, _ = run_lazy ~opts:Lazy_eval.no_opts prog in
  Alcotest.(check (list string)) "lazy runs past the latent fault"
    [ "reached" ] lzy.output;
  (* Forcing x surfaces the fault after the fact. *)
  match Heap.deep_force lzy.heap (Hashtbl.find lzy.env "x") with
  | exception Kvalue.Runtime_error _ -> ()
  | _ -> Alcotest.fail "forcing should surface the fault"

(* --- concrete syntax ------------------------------------------------------ *)

let test_parse_roundtrip_fixed () =
  let src =
    "function fmt(p0, p1) {\n  t = ((p0 * 7) + p1);\n  @ = (t % 100);\n}\n\n\
     external function ext(p0, p1) {\n  @ = p0;\n}\n\n\
     main {\n  x = 1;\n  r = {a = 2, b = \"hi\"};\n  arr = [1, 2, 3];\n\
     \  r.a = arr[1];\n  rows = R((\"SELECT COUNT(*) AS n FROM kv WHERE n > \" + x));\n\
     \  if ((x < 2)) {\n    y = fmt(x, 3);\n  } else {\n    y = 0;\n  }\n\
     \  i = 0;\n  while (true) {\n    if ((!(i < 2))) {\n      break;\n    } else {\n      skip;\n    }\n\
     \    i = (i + 1);\n  }\n\
     \  W((\"UPDATE kv SET n = \" + y + \" WHERE k = 1\"));\n\
     \  print(rows[0].n);\n  print(len(arr));\n}"
  in
  let prog = Parser.parse src in
  let printed = Pretty.program_to_string prog in
  let reparsed = Parser.parse printed in
  Alcotest.(check string) "pretty/parse fixpoint" printed
    (Pretty.program_to_string reparsed);
  (* And it runs, with identical results under both semantics. *)
  let std, _, _ = run_standard prog in
  let lzy, _, _, _ = run_lazy prog in
  Alcotest.(check (list string)) "parsed program runs" std.output lzy.output

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" src)
    [
      "main { x = ; }";
      "main { if (x) { y = 1; } }" (* missing else *);
      "main { 1 = 2; }";
      "function f { }";
      "main { x = 1 }" (* missing semicolon *);
      "";
    ]

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~count:150 ~name:"pretty/parse round-trip on random programs"
    (Generator.arbitrary Generator.default_config)
    (fun prog ->
      let printed = Pretty.program_to_string prog in
      match Parser.parse printed with
      | reparsed -> Pretty.program_to_string reparsed = printed
      | exception Parser.Error msg ->
          QCheck.Test.fail_reportf "parse error: %s\non:\n%s" msg printed)

(* Parsed programs behave identically to the originals. *)
let prop_parse_preserves_semantics =
  QCheck.Test.make ~count:60 ~name:"parsing preserves program behaviour"
    (Generator.arbitrary Generator.default_config)
    (fun prog ->
      let reparsed = Parser.parse (Pretty.program_to_string prog) in
      let a, _, _ = run_standard prog in
      let b, _, _ = run_standard reparsed in
      a.output = b.output)

(* --- the soundness theorem, property-tested ----------------------------- *)

let soundness_test ~name ~opts =
  QCheck.Test.make ~count:120 ~name
    (Generator.arbitrary Generator.default_config)
    (fun prog -> check_equiv ~opts prog)

let () =
  Alcotest.run "kernel"
    [
      ( "batching",
        [
          Alcotest.test_case "dashboard round trips" `Quick
            test_dashboard_round_trips;
          Alcotest.test_case "write flush order" `Quick test_write_flush_order;
          Alcotest.test_case "conditional query" `Quick test_conditional_query;
          Alcotest.test_case "unconsumed query" `Quick
            test_unconsumed_query_never_runs;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "persistence" `Quick test_persistence_analysis;
          Alcotest.test_case "purity" `Quick test_purity_analysis;
          Alcotest.test_case "deferrable + groups" `Quick
            test_deferrable_and_groups;
        ] );
      ( "optimizations",
        [
          Alcotest.test_case "BD defers flush" `Quick
            test_branch_deferral_defers_flush;
          Alcotest.test_case "TC reduces allocations" `Quick
            test_tc_reduces_allocations;
          Alcotest.test_case "SC skips non-persistent" `Quick
            test_sc_skips_nonpersistent;
        ] );
      ( "interpreters",
        [
          Alcotest.test_case "loop and break" `Quick test_loop_and_break;
          Alcotest.test_case "records and arrays" `Quick
            test_records_and_arrays;
          Alcotest.test_case "mutation vs laziness" `Quick
            test_mutation_vs_laziness;
          Alcotest.test_case "exception timing (Sec 3.7)" `Quick
            test_exception_timing_limitation;
          Alcotest.test_case "fuel" `Quick test_fuel;
        ] );
      ( "concrete syntax",
        [
          Alcotest.test_case "fixed round-trip" `Quick test_parse_roundtrip_fixed;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_pretty_parse_roundtrip; prop_parse_preserves_semantics ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [
            soundness_test ~name:"lazy = standard (no optimizations)"
              ~opts:Lazy_eval.no_opts;
            soundness_test ~name:"lazy = standard (SC)"
              ~opts:{ Lazy_eval.sc = true; tc = false; bd = false };
            soundness_test ~name:"lazy = standard (TC)"
              ~opts:{ Lazy_eval.sc = false; tc = true; bd = false };
            soundness_test ~name:"lazy = standard (BD)"
              ~opts:{ Lazy_eval.sc = false; tc = false; bd = true };
            soundness_test ~name:"lazy = standard (all optimizations)"
              ~opts:Lazy_eval.all_opts;
          ] );
    ]
