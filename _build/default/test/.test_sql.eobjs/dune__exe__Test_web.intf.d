test/test_web.mli:
