test/test_core.ml: Alcotest List Printf QCheck QCheck_alcotest Sloth_core Sloth_driver Sloth_net Sloth_sql Sloth_storage
