test/test_storage.ml: Alcotest Array Database Eval List Option Printf QCheck QCheck_alcotest Result Result_set Schema Sloth_sql Sloth_storage Table Value Vec
