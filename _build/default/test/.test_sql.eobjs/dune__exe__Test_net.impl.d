test/test_net.ml: Alcotest Des Gen Link List QCheck QCheck_alcotest Sloth_net Stats Vclock
