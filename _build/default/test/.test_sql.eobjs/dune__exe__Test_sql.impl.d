test/test_sql.ml: Alcotest Ast Lexer List Parser Printer Printf QCheck QCheck_alcotest Sloth_sql String
