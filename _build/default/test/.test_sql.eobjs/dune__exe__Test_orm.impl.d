test/test_orm.ml: Alcotest Desc Generic List Option Printf QCheck QCheck_alcotest Repo Row Sloth_core Sloth_driver Sloth_net Sloth_orm Sloth_sql Sloth_storage
