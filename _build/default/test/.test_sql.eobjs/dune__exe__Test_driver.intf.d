test/test_driver.mli:
