test/test_harness.ml: Alcotest Float List Printf Sloth_harness Sloth_web Sloth_workload String
