test/test_orm.mli:
