test/test_web.ml: Alcotest List Option Sloth_core Sloth_net Sloth_web String
