test/test_workload.ml: Alcotest Lazy List Printf Sloth_core Sloth_driver Sloth_harness Sloth_kernel Sloth_net Sloth_storage Sloth_web Sloth_workload String
