test/test_driver.ml: Alcotest List Printf Sloth_driver Sloth_net Sloth_sql Sloth_storage
