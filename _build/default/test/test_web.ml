(* Tests for the web framework: HTML rendering, models, the thunk-buffering
   writer, and the page pipeline's accounting. *)

module Html = Sloth_web.Html
module Model = Sloth_web.Model
module Writer = Sloth_web.Writer
module View = Sloth_web.View
module Page = Sloth_web.Page
module Thunk = Sloth_core.Thunk
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link

let test_html_render () =
  let doc =
    Html.div
      ~attrs:[ ("class", "x") ]
      [ Html.h1 "T"; Html.p [ Html.text "a<b"; Html.raw "<hr>" ] ]
  in
  Alcotest.(check string) "rendering"
    "<div class=\"x\"><h1>T</h1><p>a&lt;b<hr></p></div>"
    (Html.to_string doc)

let test_html_escape () =
  Alcotest.(check string) "escape"
    "&lt;script&gt;&amp;&quot;" (Html.to_string (Html.text "<script>&\""))

let test_node_count () =
  let doc = Html.ul [ Html.li [ Html.text "a" ]; Html.li [ Html.text "b" ] ] in
  Alcotest.(check int) "nodes" 5 (Html.node_count doc)

let test_model_order_and_override () =
  let m = Model.create () in
  Model.put_now m "a" (Html.text "1");
  Model.put_now m "b" (Html.text "2");
  Model.put_now m "a" (Html.text "3");
  Alcotest.(check (list string)) "order by first insertion" [ "a"; "b" ]
    (List.map fst (Model.entries m));
  Alcotest.(check string) "override wins" "3"
    (Html.to_string (Thunk.force (Option.get (Model.get m "a"))));
  Alcotest.(check int) "size" 2 (Model.size m)

let test_writer_defers_thunks () =
  let clock = Vclock.create () in
  let w = Writer.create clock in
  let forced = ref false in
  Writer.write w "<body>";
  Writer.write_thunk w
    (Thunk.create (fun () ->
         forced := true;
         Html.text "later"));
  Writer.write w "</body>";
  Alcotest.(check bool) "not forced until flush" false !forced;
  let out = Writer.flush w in
  Alcotest.(check bool) "forced at flush" true !forced;
  Alcotest.(check string) "order preserved" "<body>later</body>" out

let test_writer_charges_render_time () =
  let clock = Vclock.create () in
  let w = Writer.create clock in
  Writer.write_html w (Html.ul (List.init 10 (fun _ -> Html.li [ Html.text "x" ])));
  ignore (Writer.flush w);
  Alcotest.(check bool) "app time charged" true
    (Vclock.elapsed clock Vclock.App > 0.0)

let test_page_load_pipeline () =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  let controller () =
    let m = Model.create () in
    Model.put_now m "hello" (Html.text "world");
    Model.put m "deferred" (Thunk.create (fun () -> Html.int 42));
    m
  in
  let metrics = Page.load ~name:"test" ~clock ~link ~controller () in
  Alcotest.(check bool) "title rendered" true
    (String.length metrics.Page.html > 0);
  Alcotest.(check bool) "42 rendered" true
    (let h = metrics.Page.html in
     let n = String.length h in
     let rec find i =
       i + 1 < n && ((h.[i] = '4' && h.[i + 1] = '2') || find (i + 1))
     in
     find 0);
  Alcotest.(check bool) "dispatch cost charged" true
    (metrics.Page.app_ms >= !Page.dispatch_cost_ms);
  Alcotest.(check int) "no queries" 0 metrics.Page.queries

let test_view_renders_all_cells () =
  let clock = Vclock.create () in
  let w = Writer.create clock in
  let m = Model.create () in
  Model.put_now m "one" (Html.text "A");
  Model.put_now m "two" (Html.text "B");
  View.render w ~title:"t" m;
  let out = Writer.flush w in
  Alcotest.(check string) "full page"
    "<h1>t</h1><h2>one</h2>A<h2>two</h2>B" out

let () =
  Alcotest.run "web"
    [
      ( "html",
        [
          Alcotest.test_case "render" `Quick test_html_render;
          Alcotest.test_case "escape" `Quick test_html_escape;
          Alcotest.test_case "node count" `Quick test_node_count;
        ] );
      ( "model",
        [ Alcotest.test_case "order/override" `Quick test_model_order_and_override ]
      );
      ( "writer",
        [
          Alcotest.test_case "defers thunks" `Quick test_writer_defers_thunks;
          Alcotest.test_case "charges render" `Quick
            test_writer_charges_render_time;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "page load" `Quick test_page_load_pipeline;
          Alcotest.test_case "view renders cells" `Quick
            test_view_renders_all_cells;
        ] );
    ]
