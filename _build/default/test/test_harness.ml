(* Tests for the experiment harness: statistics helpers, the runner's
   bookkeeping, and the throughput simulation's qualitative behaviour. *)

module Cdf = Sloth_harness.Cdf
module Runner = Sloth_harness.Runner
module Throughput = Sloth_harness.Throughput
module Page = Sloth_web.Page

let feq = Alcotest.(check (float 1e-9))

let test_percentiles () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  feq "min" 1.0 (Cdf.percentile xs 0.0);
  feq "max" 4.0 (Cdf.percentile xs 100.0);
  feq "median interpolated" 2.5 (Cdf.median xs);
  feq "p25" 1.75 (Cdf.percentile xs 25.0);
  feq "mean" 2.5 (Cdf.mean xs);
  feq "single" 7.0 (Cdf.median [ 7.0 ]);
  match Cdf.median [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected error on empty sample"

let test_cdf_points () =
  let pts = Cdf.cdf_points ~points:4 [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "4 points" 4 (List.length pts);
  feq "last point is max" 4.0 (snd (List.nth pts 3));
  Alcotest.(check bool) "monotone" true
    (let vs = List.map snd pts in
     List.sort compare vs = vs)

let test_runner_single_page () =
  let db = Runner.prepare Sloth_workload.App_sig.tracker in
  let r = Runner.run_page ~db ~rtt_ms:0.5 Sloth_workload.App_sig.tracker "help" in
  Alcotest.(check string) "page name" "help" r.page;
  Alcotest.(check bool) "html equal" true
    (String.equal r.original.Page.html r.sloth.Page.html);
  Alcotest.(check bool) "speedup positive" true (Runner.speedup r > 0.0);
  Alcotest.(check bool) "sloth fewer trips" true
    (r.sloth.Page.round_trips < r.original.Page.round_trips)

let test_rtt_scaling_monotone () =
  (* Higher RTT must increase the speedup of a batching page. *)
  let db = Runner.prepare Sloth_workload.App_sig.tracker in
  let run rtt_ms =
    Runner.speedup
      (Runner.run_page ~db ~rtt_ms Sloth_workload.App_sig.tracker
         "list_projects")
  in
  let s1 = run 0.5 and s2 = run 2.0 and s3 = run 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.2f < %.2f < %.2f" s1 s2 s3)
    true
    (s1 < s2 && s2 < s3)

let profile ~cpu ~latency ~db ~trips =
  {
    Throughput.cpu_ms = cpu;
    latency_ms = latency;
    db_ms = db;
    trips;
    inflation_per_client = 0.001;
  }

let test_throughput_rises_with_clients () =
  let p = profile ~cpu:10.0 ~latency:40.0 ~db:3.0 ~trips:20 in
  let t10 = Throughput.simulate p ~clients:10 in
  let t50 = Throughput.simulate p ~clients:50 in
  Alcotest.(check bool)
    (Printf.sprintf "rising region: %.1f < %.1f" t10 t50)
    true (t10 < t50)

let test_throughput_saturates () =
  let p = profile ~cpu:20.0 ~latency:30.0 ~db:3.0 ~trips:20 in
  let t200 = Throughput.simulate p ~clients:200 in
  let t600 = Throughput.simulate p ~clients:600 in
  (* Past saturation, inflation reduces throughput. *)
  Alcotest.(check bool)
    (Printf.sprintf "decline: %.1f >= %.1f" t200 t600)
    true (t200 >= t600)

let test_fewer_trips_higher_peak () =
  let slow = profile ~cpu:20.0 ~latency:40.0 ~db:4.0 ~trips:60 in
  let fast = profile ~cpu:14.0 ~latency:40.0 ~db:3.0 ~trips:15 in
  let peak p =
    List.fold_left
      (fun acc c -> Float.max acc (Throughput.simulate p ~clients:c))
      0.0 [ 50; 100; 200; 400 ]
  in
  Alcotest.(check bool) "batching build peaks higher" true
    (peak fast > peak slow)

let () =
  Alcotest.run "harness"
    [
      ( "cdf",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "cdf points" `Quick test_cdf_points;
        ] );
      ( "runner",
        [
          Alcotest.test_case "single page" `Quick test_runner_single_page;
          Alcotest.test_case "rtt scaling" `Quick test_rtt_scaling_monotone;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "rises" `Quick test_throughput_rises_with_clients;
          Alcotest.test_case "saturates" `Quick test_throughput_saturates;
          Alcotest.test_case "fewer trips, higher peak" `Quick
            test_fewer_trips_higher_peak;
        ] );
    ]
