(* Smoke: run both apps' pages in both modes; verify HTML equality and show
   aggregate batching behaviour. *)
let () =
  List.iter
    (fun (appname, app) ->
      let runs = Sloth_harness.Runner.run_app app in
      let mismatches =
        List.filter
          (fun (r : Sloth_harness.Runner.page_run) ->
            r.original.html <> r.sloth.html)
          runs
      in
      Printf.printf "%s: %d pages, %d html mismatches\n" appname
        (List.length runs) (List.length mismatches);
      List.iteri
        (fun i (r : Sloth_harness.Runner.page_run) ->
          if i < 8 || r.original.html <> r.sloth.html then
            Printf.printf
              "  %-40s speedup %.2fx  trips %d->%d  queries %d->%d  maxbatch %d\n"
              r.page
              (Sloth_harness.Runner.speedup r)
              r.original.round_trips r.sloth.round_trips r.original.queries
              r.sloth.queries r.sloth.max_batch)
        runs;
      let med xs = List.nth (List.sort compare xs) (List.length xs / 2) in
      Printf.printf "  median speedup: %.2f  max: %.2f  min: %.2f\n"
        (med (List.map Sloth_harness.Runner.speedup runs))
        (List.fold_left max 0. (List.map Sloth_harness.Runner.speedup runs))
        (List.fold_left min 99. (List.map Sloth_harness.Runner.speedup runs));
      let sum f = List.fold_left (fun a r -> a +. f r) 0. runs in
      let oa = sum (fun (r:Sloth_harness.Runner.page_run) -> r.original.app_ms)
      and od = sum (fun r -> r.original.db_ms)
      and on = sum (fun r -> r.original.net_ms)
      and sa = sum (fun r -> r.sloth.app_ms)
      and sd = sum (fun r -> r.sloth.db_ms)
      and sn = sum (fun r -> r.sloth.net_ms) in
      let pct a b c x = 100. *. x /. (a +. b +. c) in
      Printf.printf "  original breakdown: app %.0f%% db %.0f%% net %.0f%% (total %.0f ms)\n"
        (pct oa od on oa) (pct oa od on od) (pct oa od on on) (oa+.od+.on);
      Printf.printf "  sloth    breakdown: app %.0f%% db %.0f%% net %.0f%% (total %.0f ms)\n"
        (pct sa sd sn sa) (pct sa sd sn sd) (pct sa sd sn sn) (sa+.sd+.sn))
    [ ("tracker", Sloth_workload.App_sig.tracker);
      ("medrec", Sloth_workload.App_sig.medrec) ]
