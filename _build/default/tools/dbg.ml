open Sloth_kernel
module Db = Sloth_storage.Database
module Conn = Sloth_driver.Connection
module Store = Sloth_core.Query_store
module Link = Sloth_net.Link
module Vclock = Sloth_net.Vclock

let fresh_conn () =
  let db = Db.create () in
  Generator.setup_schema db;
  (db, Conn.create db (Link.create (Vclock.create ())))

let () =
  Printexc.record_backtrace true;
  let rng = Random.State.make [| int_of_float (Unix.gettimeofday () *. 1000.) |] in
  let all_opts =
    [ Lazy_eval.no_opts;
      { Lazy_eval.sc = true; tc = false; bd = false };
      { Lazy_eval.sc = false; tc = true; bd = false };
      { Lazy_eval.sc = false; tc = false; bd = true };
      { Lazy_eval.sc = true; tc = true; bd = false };
      { Lazy_eval.sc = true; tc = false; bd = true };
      { Lazy_eval.sc = false; tc = true; bd = true };
      Lazy_eval.all_opts ]
  in
  for i = 0 to 4000 do
    let opts = List.nth all_opts (i mod 8) in
    let prog = Generator.program rng Generator.default_config in
    let _, conn1 = fresh_conn () in
    let _, conn2 = fresh_conn () in
    let store = Store.create conn2 in
    (try
      let std = Standard.run prog conn1 in
      (try
        let lzy = Lazy_eval.run ~opts prog store in
        Hashtbl.iter (fun x v ->
            match Heap.deep_force lzy.heap v with
            | v -> Hashtbl.replace lzy.env x v
            | exception Kvalue.Runtime_error msg
              when String.length msg >= 7 && String.sub msg 0 7 = "unbound" ->
                Hashtbl.remove lzy.env x)
          (Hashtbl.copy lzy.env);
        if std.output <> lzy.output then begin
          Printf.printf "OUTPUT MISMATCH at %d\n%s\n" i (Pretty.program_to_string prog);
          Printf.printf "std: %s\nlzy: %s\n" (String.concat "|" std.output) (String.concat "|" lzy.output);
          exit 1
        end
      with e ->
        Printf.printf "LAZY FAILURE at %d: %s\n%s\n%s\n" i (Printexc.to_string e) (Printexc.get_backtrace ()) (Pretty.program_to_string prog);
        exit 1)
    with e -> Printf.printf "std raised %s at %d (skipping)\n" (Printexc.to_string e) i)
  done;
  print_endline "all ok"
