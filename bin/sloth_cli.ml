(* Command-line front end to the reproduction.

   Subcommands:
     pages   — list the page benchmarks of an application
     load    — load one page under both strategies and print the metrics
     sql     — run ad-hoc SQL against a populated application database
     kernel  — run a kernel-language source file under both semantics
     exp     — run one of the paper's experiments (same as bench/main.exe)
     soak    — run the kernel soundness property for a while

   Run `sloth_cli <cmd> --help` for options. *)

open Cmdliner

let app_conv =
  let parse = function
    | "tracker" -> Ok Sloth_workload.App_sig.tracker
    | "medrec" -> Ok Sloth_workload.App_sig.medrec
    | "graph" -> Ok Sloth_workload.App_sig.graph
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown app %S (tracker | medrec | graph)" s))
  in
  let print ppf (module A : Sloth_workload.App_sig.S) =
    Format.pp_print_string ppf A.name
  in
  Arg.conv (parse, print)

let app_arg =
  Arg.(
    value
    & opt app_conv Sloth_workload.App_sig.medrec
    & info [ "a"; "app" ] ~docv:"APP" ~doc:"Application: tracker, medrec or graph.")

let rtt_arg =
  Arg.(
    value & opt float 0.5
    & info [ "rtt" ] ~docv:"MS" ~doc:"Simulated network round-trip time.")

(* --- pages --------------------------------------------------------------- *)

let pages_cmd =
  let run (module A : Sloth_workload.App_sig.S) =
    let db = Sloth_storage.Database.create () in
    let clock = Sloth_net.Vclock.create () in
    let conn = Sloth_driver.Connection.create db (Sloth_net.Link.create clock) in
    let module X = Sloth_core.Exec.Eager (struct
      let conn = conn
    end) in
    let module P = A.Pages (X) in
    List.iter print_endline P.page_names;
    Printf.printf "(%d pages)\n" (List.length P.page_names)
  in
  Cmd.v
    (Cmd.info "pages" ~doc:"List the page benchmarks of an application.")
    Term.(const run $ app_arg)

(* --- load ---------------------------------------------------------------- *)

let load_cmd =
  let page_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PAGE" ~doc:"Page name (see the pages subcommand).")
  in
  let html_arg =
    Arg.(value & flag & info [ "html" ] ~doc:"Print the rendered HTML too.")
  in
  let faults_arg =
    Arg.(
      value & opt float 0.0
      & info [ "faults" ] ~docv:"RATE"
          ~doc:
            "Inject wire faults at this rate (0 disables; the driver then \
             retries with its default policy).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the fault RNG; same seed, same fault sequence.")
  in
  let show label (m : Sloth_web.Page.metrics) =
    Printf.printf
      "%-9s %8.1f ms  (app %6.1f  db %5.1f  net %6.1f)  trips %4d  queries \
       %4d  max batch %3d"
      label m.total_ms m.app_ms m.db_ms m.net_ms m.round_trips m.queries
      m.max_batch;
    if m.faults > 0 || m.retries > 0 then
      Printf.printf "  faults %d  retries %d" m.faults m.retries;
    print_newline ()
  in
  let run (module A : Sloth_workload.App_sig.S) rtt_ms page html rate seed =
    let db = Sloth_harness.Runner.prepare (module A) in
    if rate <= 0.0 then
      match Sloth_harness.Runner.run_page ~db ~rtt_ms (module A) page with
      | r ->
          show "original" r.original;
          show "sloth" r.sloth;
          Printf.printf "speedup %.2fx   html identical: %b\n"
            (Sloth_harness.Runner.speedup r)
            (String.equal r.original.html r.sloth.html);
          if html then print_endline r.sloth.html
      | exception Not_found -> prerr_endline ("no such page: " ^ page)
    else
      (* Both strategies face the same fault plan (fresh fault state each,
         so both see the same seeded sequence). *)
      let fresh_fault () =
        Sloth_net.Fault.create (Sloth_net.Fault.uniform ~seed rate)
      in
      let report label = function
        | Ok m ->
            show label m;
            if html && String.equal label "sloth" then print_endline m.html
        | Error e -> Printf.printf "%-9s aborted: %s\n" label e
      in
      match
        ( Sloth_harness.Runner.load_original_result ~fault:(fresh_fault ())
            ~db ~rtt_ms (module A) page,
          Sloth_harness.Runner.load_sloth_result ~fault:(fresh_fault ()) ~db
            ~rtt_ms (module A) page )
      with
      | orig, sloth ->
          report "original" orig;
          report "sloth" sloth;
          (match (orig, sloth) with
          | Ok o, Ok s ->
              Printf.printf "speedup %.2fx   html identical: %b\n"
                (o.Sloth_web.Page.total_ms /. s.Sloth_web.Page.total_ms)
                (String.equal o.Sloth_web.Page.html s.Sloth_web.Page.html)
          | _ -> ())
      | exception Not_found -> prerr_endline ("no such page: " ^ page)
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load one page under both strategies.")
    Term.(
      const run $ app_arg $ rtt_arg $ page_arg $ html_arg $ faults_arg
      $ fault_seed_arg)

(* --- sql ----------------------------------------------------------------- *)

let sql_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"Statement to execute.")
  in
  let run (module A : Sloth_workload.App_sig.S) sql =
    let db = Sloth_storage.Database.create () in
    A.populate db;
    match Sloth_storage.Database.exec_sql db sql with
    | outcome ->
        Format.printf "%a@." Sloth_storage.Result_set.pp outcome.rs;
        if outcome.rows_affected > 0 then
          Printf.printf "(%d rows affected)\n" outcome.rows_affected
    | exception Sloth_storage.Database.Sql_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:"Run ad-hoc SQL against a freshly populated application database.")
    Term.(const run $ app_arg $ query_arg)

(* --- explain ------------------------------------------------------------- *)

let explain_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL" ~doc:"SELECT statement to explain.")
  in
  let no_planner_arg =
    Arg.(
      value & flag
      & info [ "no-planner" ]
          ~doc:
            "Show the plan the legacy first-match heuristics would pick \
             (the differential-oracle path) instead of the cost-based one.")
  in
  let split_stmts sql =
    String.split_on_char ';' sql
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_select src =
    match Sloth_sql.Parser.parse src with
    | exception Sloth_sql.Parser.Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
    | Sloth_sql.Ast.Select s -> s
    | _ ->
        Printf.eprintf "error: explain supports SELECT statements only\n";
        exit 1
  in
  (* Markers for the multi-statement form: how would the flush-level MQO
     pass and the result cache treat each statement, were they submitted
     as one coalesced read group?  A normalized duplicate of an earlier
     statement executes zero times (and a repeat flush serves it from the
     result cache); a same-shape plan rides an earlier statement's shared
     pass. *)
  let markers selects physs =
    let keys =
      List.map (fun s -> Sloth_sql.Normalize.key (Sloth_sql.Ast.Select s)) selects
    in
    let groups = Sloth_storage.Mqo.merge physs in
    let group_of i =
      List.find_opt
        (fun (g : Sloth_storage.Mqo.group) -> List.mem i g.g_members)
        groups
    in
    List.mapi
      (fun i key ->
        let dup =
          List.find_index (fun k -> String.equal k key) keys
          |> Option.get (* finds at worst i itself *)
        in
        if dup < i then
          [ Printf.sprintf "[cache hit] normalized duplicate of statement \
                            #%d; executes once, repeat flushes are served \
                            from the result cache" (dup + 1) ]
        else
          match group_of i with
          | Some { g_shape; g_members = first :: _ } when first <> i -> (
              match g_shape with
              | Sloth_storage.Mqo.Sh_eq _ | Sloth_storage.Mqo.Sh_range _ ->
                  [ Printf.sprintf
                      "[shared probe-set] merged into statement #%d's index \
                       pass" (first + 1) ]
              | Sloth_storage.Mqo.Sh_seq _ ->
                  [ Printf.sprintf
                      "[shared scan] rides statement #%d's sequential pass"
                      (first + 1) ]
              | Sloth_storage.Mqo.Sh_join _ ->
                  [ Printf.sprintf
                      "[shared join] subplan executes once with statement #%d"
                      (first + 1) ]
              | Sloth_storage.Mqo.Sh_solo -> [])
          | _ -> [])
      keys
  in
  let run (module A : Sloth_workload.App_sig.S) sql no_planner =
    let db = Sloth_storage.Database.create () in
    A.populate db;
    let selects = List.map parse_select (split_stmts sql) in
    if selects = [] then begin
      Printf.eprintf "error: no statement to explain\n";
      exit 1
    end;
    let mode =
      if no_planner then Sloth_storage.Executor.Direct
      else Sloth_storage.Executor.Planned
    in
    let plan s =
      match
        Sloth_storage.Executor.plan_of_select
          (Sloth_storage.Database.catalog db)
          ~mode
          ~model:(Sloth_storage.Database.cost_model db)
          s
      with
      | phys -> phys
      | exception Sloth_storage.Executor.Sql_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
    in
    let physs = List.map plan selects in
    let marks =
      if List.length selects > 1 then markers selects physs
      else List.map (fun _ -> []) selects
    in
    List.iteri
      (fun i (s, (phys, marks)) ->
        if i > 0 then print_newline ();
        if List.length selects > 1 then Printf.printf "-- statement #%d\n" (i + 1);
        print_endline "Logical plan:";
        print_endline
          (Sloth_storage.Plan.logical_to_string (Sloth_storage.Planner.lower s));
        Printf.printf "\nPhysical plan (%s):\n"
          (if no_planner then "legacy heuristics" else "cost-based");
        print_endline (Sloth_storage.Plan.physical_to_string phys);
        List.iter print_endline marks)
      (List.combine selects (List.combine physs marks))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the logical and physical plan (with cost estimates) a SELECT \
          gets against a freshly populated application database.  Several \
          semicolon-separated SELECTs are explained as one coalesced flush: \
          statements the multi-query optimizer would fuse are annotated \
          with [shared probe-set] / [shared scan] / [shared join] markers, \
          and normalized duplicates with [cache hit].")
    Term.(const run $ app_arg $ query_arg $ no_planner_arg)

(* --- soak ---------------------------------------------------------------- *)

let soak_cmd =
  let count_arg =
    Arg.(
      value & opt int 500
      & info [ "n" ] ~docv:"N" ~doc:"Number of random programs per strategy.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let run count seed =
    let rng = Random.State.make [| seed |] in
    let opts_list =
      [
        Sloth_kernel.Lazy_eval.no_opts;
        { Sloth_kernel.Lazy_eval.sc = true; tc = false; bd = false };
        { Sloth_kernel.Lazy_eval.sc = false; tc = true; bd = false };
        { Sloth_kernel.Lazy_eval.sc = false; tc = false; bd = true };
        Sloth_kernel.Lazy_eval.all_opts;
      ]
    in
    let failures = ref 0 in
    for i = 1 to count do
      let prog =
        Sloth_kernel.Generator.program rng
          Sloth_kernel.Generator.default_config
      in
      let opts = List.nth opts_list (i mod List.length opts_list) in
      let fresh () =
        let db = Sloth_storage.Database.create () in
        Sloth_kernel.Generator.setup_schema db;
        Sloth_driver.Connection.create db
          (Sloth_net.Link.create (Sloth_net.Vclock.create ()))
      in
      try
        let std = Sloth_kernel.Standard.run prog (fresh ()) in
        let store = Sloth_core.Query_store.create (fresh ()) in
        let lzy = Sloth_kernel.Lazy_eval.run ~opts prog store in
        if std.output <> lzy.output then begin
          incr failures;
          Printf.printf "MISMATCH on program %d\n" i
        end
      with e ->
        incr failures;
        Printf.printf "FAILURE on program %d: %s\n" i (Printexc.to_string e)
    done;
    Printf.printf "%d programs checked, %d failures\n" count !failures;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run randomly generated kernel programs under standard and lazy \
          semantics and compare outputs.")
    Term.(const run $ count_arg $ seed_arg)

(* --- kernel ---------------------------------------------------------------- *)

let kernel_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Kernel-language source file.")
  in
  let opts_arg =
    Arg.(
      value & opt (enum [ ("none", Sloth_kernel.Lazy_eval.no_opts);
                          ("all", Sloth_kernel.Lazy_eval.all_opts) ])
              Sloth_kernel.Lazy_eval.all_opts
      & info [ "opts" ] ~docv:"none|all" ~doc:"Optimization set for the lazy run.")
  in
  let run file opts =
    let src = In_channel.with_open_text file In_channel.input_all in
    match Sloth_kernel.Parser.parse src with
    | exception Sloth_kernel.Parser.Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
    | prog ->
        let fresh () =
          let db = Sloth_storage.Database.create () in
          Sloth_kernel.Generator.setup_schema db;
          let clock = Sloth_net.Vclock.create () in
          let link = Sloth_net.Link.create ~rtt_ms:0.5 clock in
          (clock, link, Sloth_driver.Connection.create db link)
        in
        let clock, link, conn = fresh () in
        Sloth_core.Runtime.set_clock (Some clock);
        let std = Sloth_kernel.Standard.run prog conn in
        Sloth_core.Runtime.set_clock None;
        Printf.printf "[standard] %s\n  round trips %d, %.2f virtual ms\n"
          (String.concat " | " std.output)
          (Sloth_net.Stats.round_trips (Sloth_net.Link.stats link))
          (Sloth_net.Vclock.total clock);
        let clock, link, conn = fresh () in
        let store = Sloth_core.Query_store.create conn in
        Sloth_core.Runtime.set_clock (Some clock);
        let lzy = Sloth_kernel.Lazy_eval.run ~opts prog store in
        Sloth_core.Query_store.flush store;
        Sloth_core.Runtime.set_clock None;
        Printf.printf "[lazy]     %s\n  round trips %d, %.2f virtual ms\n"
          (String.concat " | " lzy.output)
          (Sloth_net.Stats.round_trips (Sloth_net.Link.stats link))
          (Sloth_net.Vclock.total clock);
        if std.output <> lzy.output then begin
          prerr_endline "OUTPUT MISMATCH";
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "kernel"
       ~doc:
         "Run a kernel-language program file under both semantics (against \
          the seeded kv table, keys 1-20).")
    Term.(const run $ file_arg $ opts_arg)

(* --- exp ----------------------------------------------------------------- *)

let exp_cmd =
  let experiments =
    [
      ("fig5", Sloth_harness.Page_experiments.fig5);
      ("fig6", Sloth_harness.Page_experiments.fig6);
      ("fig7", Sloth_harness.Throughput.fig7);
      ("fig8", Sloth_harness.Page_experiments.fig8);
      ("fig9", Sloth_harness.Page_experiments.fig9);
      ("fig10", Sloth_harness.Db_scaling.fig10);
      ("fig11", Sloth_harness.Analysis_stats.fig11);
      ("fig12", Sloth_harness.Ablation.fig12);
      ("fig13", Sloth_harness.Overhead.fig13);
      ("chaos", Sloth_harness.Chaos.chaos);
      ("recovery", fun () -> Sloth_harness.Recovery.recovery ());
      ("failover", fun () -> Sloth_harness.Failover.failover ());
      ("sharding", fun () -> Sloth_harness.Sharding.sharding ());
      ("repl-shard", fun () -> Sloth_harness.Repl_sharding.repl_sharding ());
      ("throughput", fun () -> Sloth_harness.Throughput.served ());
      ("mqo", fun () -> Sloth_harness.Mqo_bench.mqo ());
      ("graph", fun () -> Sloth_harness.Graph_bench.graph ());
      ("appendix", Sloth_harness.Page_experiments.appendix);
    ]
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, _) -> (n, n)) experiments))) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "fig5..fig13, chaos, recovery, failover, sharding, repl-shard, \
             throughput, \
             mqo, graph or appendix.  The recovery sweep includes the served-crash \
             arm: the async multi-session server under seeded random \
             crashes, re-driving torn batches through the durable \
             idempotency path.  The failover sweep replicates the primary \
             over WAL-shipping followers, serves reads from them and \
             promotes the most caught-up one on every crash.  The sharding \
             sweep two-phase-commits write batches across hash partitions \
             and crashes every protocol step, auditing per-shard WALs \
             against the coordinator's decision log.  The repl-shard sweep \
             re-runs that matrix with every shard a replication group, \
             killing coordinator, shard primaries or followers at each \
             step and demanding that prepared transactions survive \
             promotion.")
  in
  let crash_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash" ] ~docv:"RATE"
          ~doc:
            "Instead of the named experiment's full sweep, print a one-line \
             recovery summary with random server crashes at $(docv) per \
             round trip (only meaningful with the recovery experiment).")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Checkpoint interval, in commits, for --crash runs (default 4; \
             0 disables checkpoints so recovery replays the whole log).")
  in
  let run name crash checkpoint_every =
    match (name, crash) with
    | "recovery", Some rate ->
        Sloth_harness.Recovery.tracked ~crash:rate ?checkpoint_every ()
    | _ -> (List.assoc name experiments) ()
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run one of the paper's experiments.")
    Term.(const run $ name_arg $ crash_arg $ checkpoint_arg)

let () =
  let info =
    Cmd.info "sloth_cli" ~version:"1.0.0"
      ~doc:"Sloth (SIGMOD 2014) reproduction toolkit."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            pages_cmd;
            load_cmd;
            sql_cmd;
            explain_cmd;
            soak_cmd;
            kernel_cmd;
            exp_cmd;
          ]))
